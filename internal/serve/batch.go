package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/computation"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/observer"
	"repro/internal/search"
)

// POST /v1/batch: the fleet transport. One round-trip carries many
// shard decisions — each item a (pair, model, frontier range) triple —
// so a coordinator amortizes connection and admission overhead across
// a whole dispatch round instead of paying it per shard. Items run
// sequentially under ONE admission slot (a batch is one unit of
// NP-hard work; parallelism comes from dispatching batches to many
// replicas), and each item's verdict is content-addressed in the same
// cache the /v1/check endpoint uses, keyed by the canonical pair, the
// model, the exact shard range, and the governance fingerprint — two
// different governance clamps or shard ranges can never alias onto
// one cached verdict.

// maxBatchItems bounds one request's work; the coordinator splits
// larger plans into multiple batches.
const maxBatchItems = 64

// BatchItem is one shard decision within a BatchRequest. RootLo/RootHi
// restrict an SC search to the frontier shard [RootLo, RootHi)
// (RootHi 0 = through the end; 0,0 = the full run) and must be 0,0 for
// the polynomial models, which are never worth splitting.
type BatchItem struct {
	// ID is echoed on the item's result so the coordinator can match
	// answers to shards without relying on order (it may retry or
	// re-dispatch subsets).
	ID     string `json:"id,omitempty"`
	Pair   string `json:"pair"`
	Model  string `json:"model"`
	RootLo int    `json:"root_lo,omitempty"`
	RootHi int    `json:"root_hi,omitempty"`
}

// BatchRequest asks for a batch of shard decisions under one
// governance block.
type BatchRequest struct {
	Items   []BatchItem `json:"items"`
	Options Options     `json:"options"`
}

// BatchResult is one item's answer. WitnessRoot and RootsTotal feed
// the fleet merge: the lowest witness root across shards wins, and
// RootsTotal lets the coordinator confirm every replica compiled the
// same frontier.
type BatchResult struct {
	ID      string         `json:"id,omitempty"`
	Model   string         `json:"model"`
	Verdict search.Verdict `json:"verdict"`
	// Witness is the witnessing sort (SC In verdicts), rendered with
	// the pair's node names exactly as /v1/check renders it.
	Witness string `json:"witness,omitempty"`
	// WitnessRoot is the global frontier index of the witness's root
	// (-1 when there is no witness); meaningful for SC only.
	WitnessRoot int `json:"witness_root"`
	// RootsTotal is the size of the whole admissible root frontier the
	// shard was cut from (SC only; 0 otherwise).
	RootsTotal   int          `json:"roots_total,omitempty"`
	LocWitnesses []string     `json:"loc_witnesses,omitempty"`
	Violation    string       `json:"violation,omitempty"`
	Stats        *SearchStats `json:"stats,omitempty"`
}

// BatchResponse answers a BatchRequest, one result per item in item
// order.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// batchItem is a validated, parsed item ready to decide.
type batchItem struct {
	id     string
	model  string
	lo, hi int
	named  *computation.Named
	ofn    *observer.Observer
	canon  string
}

// parseBatchItem validates one item. A malformed item fails the whole
// batch with 400: batches are built mechanically by a coordinator, so
// a bad item is a caller bug, not data to partially tolerate.
func parseBatchItem(it BatchItem, idx int) (batchItem, error) {
	models := memmodel.ModelNames()
	known := false
	for _, m := range models {
		known = known || m == it.Model
	}
	if !known {
		return batchItem{}, fmt.Errorf("item %d: unknown model %q (valid: %s)", idx, it.Model, strings.Join(models, ", "))
	}
	if it.RootLo < 0 || it.RootHi < 0 {
		return batchItem{}, fmt.Errorf("item %d: negative shard bound [%d, %d)", idx, it.RootLo, it.RootHi)
	}
	if it.RootHi > 0 && it.RootLo >= it.RootHi {
		return batchItem{}, fmt.Errorf("item %d: empty shard range [%d, %d)", idx, it.RootLo, it.RootHi)
	}
	if it.Model != "SC" && (it.RootLo != 0 || it.RootHi != 0) {
		return batchItem{}, fmt.Errorf("item %d: model %s is not shardable (shard range [%d, %d))", idx, it.Model, it.RootLo, it.RootHi)
	}
	named, ofn, err := observer.ParsePairString(it.Pair)
	if err != nil {
		return batchItem{}, fmt.Errorf("item %d: %w", idx, err)
	}
	if named.Comp.NumNodes() == 0 {
		return batchItem{}, fmt.Errorf("item %d: pair has no nodes", idx)
	}
	var canon strings.Builder
	if err := observer.FormatPair(&canon, named, ofn); err != nil {
		return batchItem{}, fmt.Errorf("item %d: %w", idx, err)
	}
	return batchItem{
		id: it.ID, model: it.Model, lo: it.RootLo, hi: it.RootHi,
		named: named, ofn: ofn, canon: canon.String(),
	}, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, r, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Items) > maxBatchItems {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("batch has %d items, max %d", len(req.Items), maxBatchItems))
		return
	}
	items := make([]batchItem, len(req.Items))
	for i, it := range req.Items {
		p, err := parseBatchItem(it, i)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		items[i] = p
	}

	// One admission slot covers the whole batch; the per-item cache
	// fills below must NOT re-admit (a second admit under a held slot
	// can deadlock a fully loaded server against itself).
	release, err := s.adm.admit(r.Context())
	if err != nil {
		s.writeAdmissionError(w, r, err)
		return
	}
	defer release()

	opts, timeout := s.cfg.Limits.searchOptions(req.Options)
	fp := s.cfg.Limits.optionsFingerprint(req.Options)
	rec := s.requestRecorder(r)

	resp := BatchResponse{Results: make([]BatchResult, 0, len(items))}
	src := sourceHit
	for _, it := range items {
		it := it
		key := Key("batch", it.canon, it.model, fmt.Sprintf("lo=%d,hi=%d", it.lo, it.hi), fp)
		body, itemSrc, err := s.cache.do(r.Context(), key, func() ([]byte, bool, error) {
			return s.decideBatchItem(it, opts, timeout, rec)
		})
		if err != nil {
			s.writeAdmissionError(w, r, err)
			return
		}
		if itemSrc != sourceHit {
			src = sourceMiss
		}
		// The cached body is the result minus the ID (IDs vary across
		// coordinators retrying the same shard; the verdict does not).
		var res BatchResult
		if err := json.Unmarshal(body, &res); err != nil {
			writeError(w, r, http.StatusInternalServerError, err)
			return
		}
		res.ID = it.id
		resp.Results = append(resp.Results, res)
	}
	body, err := json.Marshal(resp)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	respond(w, src, append(body, '\n'))
}

// decideBatchItem runs one item's decision and renders its cacheable
// body. Admission is already held by the batch exchange.
func (s *Server) decideBatchItem(it batchItem, opts memmodel.SearchOptions, timeout time.Duration, rec obs.Recorder) ([]byte, bool, error) {
	ctx, cancel := s.decisionContext(timeout)
	defer cancel()

	res := BatchResult{Model: it.model, WitnessRoot: -1}
	s.countDecision(it.model)
	var cacheable bool
	if it.model == "SC" {
		scOpts := opts
		scOpts.Recorder = obs.WithRun(rec, fmt.Sprintf("SC[%d,%d)", it.lo, it.hi))
		sr := memmodel.SCDecideShard(ctx, it.named.Comp, it.ofn, it.lo, it.hi, scOpts)
		v := sr.Verdict()
		res.Verdict = v
		res.WitnessRoot = sr.WitnessRoot
		res.RootsTotal = sr.Stats.Roots
		st := SearchStats{States: sr.Stats.States, MemoHits: sr.Stats.MemoHits, Pruned: sr.Stats.Pruned, Workers: sr.Stats.Workers}
		res.Stats = &st
		if v.In() {
			res.Witness = it.named.RenderOrder(sr.Order)
		}
		cacheable = v.Decided
	} else {
		dOpts := opts
		dOpts.Recorder = rec
		d, err := memmodel.DecideByName(ctx, it.model, it.named.Comp, it.ofn, dOpts)
		if err != nil { // unreachable: the model name was validated
			return nil, false, err
		}
		res.Verdict = d.Verdict
		switch it.model {
		case "TSO":
			st := SearchStats{States: d.Stats.States, MemoHits: d.Stats.MemoHits, Pruned: d.Stats.Pruned, Workers: d.Stats.Workers}
			res.Stats = &st
			if d.Verdict.In() {
				res.Witness = it.named.RenderOrder(d.Order)
			}
		case "LC":
			if d.Verdict.In() {
				for _, sort := range d.LocOrders {
					res.LocWitnesses = append(res.LocWitnesses, it.named.RenderOrder(sort))
				}
			}
		default:
			if v := d.Violation; v != nil {
				res.Violation = fmt.Sprintf("%d: %s ≺ %s ≺ %s",
					v.Loc, it.named.RenderNode(v.U), it.named.RenderNode(v.V), it.named.RenderNode(v.W))
			}
		}
		cacheable = d.Verdict.Decided
	}
	body, err := json.Marshal(res)
	return body, cacheable, err
}

package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/checker"
	"repro/internal/mw"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/stream"
)

// POST /v1/trace: online trace verification. The client holds the
// connection open and writes trace events as NDJSON (the wire format
// of internal/stream: one locs event, then node events in delivery
// order, then an end event); the server verifies incrementally and
// writes NDJSON records back — a violation record the moment a stable
// violation becomes observable (it holds in every completion of the
// prefix, so it is definitive mid-stream), heartbeat records with the
// checker's gauges at a configured cadence, and one final record with
// the end-of-stream verdicts, byte-identical to POST /v1/verify's
// verdicts on the completed trace.
//
// The exchange deliberately bypasses the serving stack's two blanket
// deadlines, replacing them with streaming governance:
//
//   - The Timeout middleware exempts this path (mw.TimeoutExcept): the
//     exchange deadline is sized for one decision, not a long-lived
//     feed.
//   - The daemon's http.Server read deadline (ReadTimeout) is armed at
//     accept time for the whole request body — fatal to a stream that
//     trickles events for minutes. The handler overrides it through
//     http.ResponseController with its own discipline: an absolute
//     per-stream age cap plus a rolling idle window re-armed before
//     every read, both from StreamConfig. A stalled or immortal client
//     is cut off by governance, not by a transport constant.
//
// Ingest is decoupled from verification by the bounded SPSC ring in
// internal/stream: the connection reader parses and pushes, the
// checker goroutine pops and verifies, and when the checker cannot
// keep up the overflow policy sheds events, marks the stream overrun,
// and degrades undecided models to INCONCLUSIVE(overrun) rather than
// blocking the socket or buffering without bound.
//
// Streams are never cached: the resource is the connection, not the
// verdict, and each stream's event order is its own.

// StreamConfig governs the /v1/trace endpoint. The zero value gets
// conservative defaults from withDefaults.
type StreamConfig struct {
	// MaxAge is the absolute lifetime cap of one stream; at expiry the
	// stream finishes early with INCONCLUSIVE(deadline) for undecided
	// models (0 = 10m).
	MaxAge time.Duration
	// IdleTimeout is the rolling per-read deadline: the longest the
	// server waits for the next event line (0 = 1m).
	IdleTimeout time.Duration
	// Heartbeat is the cadence of gauge heartbeat records on an
	// otherwise quiet response (0 = 5s).
	Heartbeat time.Duration
	// Buffer is the event ring capacity, rounded up to a power of two
	// (0 = 1024).
	Buffer int
	// MaxEvents caps node events per stream; past it the overflow
	// policy treats the stream as overrun (0 = unlimited).
	MaxEvents int64
	// PushWait bounds how long the reader waits for ring space before
	// shedding (0 = 10ms).
	PushWait time.Duration
	// CheckEvery is the incremental checker's cycle-check cadence in
	// node events (0 = stream.DefaultCheckEvery).
	CheckEvery int
}

// withDefaults fills zero fields.
func (c StreamConfig) withDefaults() StreamConfig {
	if c.MaxAge <= 0 {
		c.MaxAge = 10 * time.Minute
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = time.Minute
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 5 * time.Second
	}
	if c.Buffer <= 0 {
		c.Buffer = 1024
	}
	if c.PushWait <= 0 {
		c.PushWait = 10 * time.Millisecond
	}
	return c
}

// StreamRecord is one NDJSON line of the /v1/trace response stream.
type StreamRecord struct {
	// Type discriminates the record: "violation", "heartbeat", "final",
	// or "error".
	Type string `json:"type"`
	// Violation carries a stable mid-stream violation (type
	// "violation"): it excludes the named models in every completion of
	// the stream, so the client may act on it before the stream ends.
	Violation *stream.Violation `json:"violation,omitempty"`
	// Stats carries the checker gauges (heartbeat and final records).
	Stats *stream.Stats `json:"stats,omitempty"`
	// LC/SC/Relaxed mirror VerifyResponse on the final record. When the
	// stream ended cleanly they match POST /v1/verify on the completed
	// trace; an early finish (idle cut, drain, client error) reports
	// VIOLATED for online-violated models and a typed INCONCLUSIVE for
	// the rest.
	LC      *VerifyResult `json:"lc,omitempty"`
	SC      *VerifyResult `json:"sc,omitempty"`
	Relaxed bool          `json:"relaxed,omitempty"`
	// Error explains a fatal stream error (type "error"; a final record
	// still follows it).
	Error string `json:"error,omitempty"`
	// RequestID correlates the stream with the access log (final and
	// error records).
	RequestID string `json:"request_id,omitempty"`
}

// StreamStats is the /statsz gauge block for /v1/trace.
type StreamStats struct {
	Active         int64 `json:"active"`
	Done           int64 `json:"done"`
	EventsIngested int64 `json:"events_ingested"`
	Violations     int64 `json:"violations"`
	Overruns       int64 `json:"overruns"`
	Shed           int64 `json:"shed"`
	// Frontier and CheckpointAge are the most recent per-stream gauge
	// samples (taken at heartbeat cadence) — a coarse health signal,
	// not a sum over concurrent streams.
	Frontier      int64 `json:"frontier"`
	CheckpointAge int64 `json:"checkpoint_age"`
}

// streamTotals is the server-side accumulator behind StreamStats.
type streamTotals struct {
	active, done, events, violations, overruns, shed atomic.Int64
	frontier, checkpointAge                          atomic.Int64
}

func (t *streamTotals) stats() StreamStats {
	return StreamStats{
		Active:         t.active.Load(),
		Done:           t.done.Load(),
		EventsIngested: t.events.Load(),
		Violations:     t.violations.Load(),
		Overruns:       t.overruns.Load(),
		Shed:           t.shed.Load(),
		Frontier:       t.frontier.Load(),
		CheckpointAge:  t.checkpointAge.Load(),
	}
}

// sample publishes one checker gauge snapshot to /statsz.
func (t *streamTotals) sample(st stream.Stats) {
	t.frontier.Store(int64(st.Frontier))
	t.checkpointAge.Store(st.CheckpointAge)
}

// handleTrace is the long-lived streaming exchange. One admission slot
// is held for the stream's whole life — a stream is a decision in
// progress, and draining must wait for (or cancel) it like any other.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	release, err := s.adm.admit(r.Context())
	if err != nil {
		s.writeAdmissionError(w, r, err)
		return
	}
	defer release()

	cfg := s.cfg.Stream
	rc := http.NewResponseController(w)
	// Full duplex: the handler reads events off the request body while
	// writing records to the response. Without this, HTTP/1.1's default
	// half-duplex discipline drains the body before flushing the
	// response headers — a deadlock against a client that streams
	// events only after seeing them. Best-effort: HTTP/2 is natively
	// full-duplex and has no switch to flip.
	rc.EnableFullDuplex()
	cutoff := time.Now().Add(cfg.MaxAge)
	// Override the daemon's blanket transport deadlines. Errors are
	// tolerated: a ResponseWriter that cannot set deadlines (some test
	// harnesses) simply keeps the server-wide ones.
	rc.SetWriteDeadline(cutoff)
	rc.SetReadDeadline(time.Now().Add(cfg.IdleTimeout))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc.Flush()

	rec := s.requestRecorder(r)
	obs.Emit(rec, obs.Event{Kind: obs.RunStart, Run: "stream"})
	s.streams.active.Add(1)
	defer s.streams.active.Add(-1)

	ring := stream.NewRing(cfg.Buffer)
	var stopRead atomic.Bool
	var readerErr error
	readerDone := make(chan struct{})
	go func() {
		readerErr = s.streamReader(r, rc, ring, cfg, cutoff, &stopRead)
		ring.Close()
		close(readerDone)
	}()
	// joinReader stops the producer and waits it out. The reader may
	// sit blocked on the socket, so the read deadline is punched (and
	// re-punched, in case the reader re-armed it in the race window)
	// until the goroutine exits; net.Conn deadlines are safe to set
	// concurrently with a blocked Read.
	joinReader := func() {
		stopRead.Store(true)
		for {
			rc.SetReadDeadline(time.Now())
			select {
			case <-readerDone:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}

	chk := stream.New(stream.Options{CheckEvery: cfg.CheckEvery, MaxEvents: cfg.MaxEvents})
	enc := json.NewEncoder(w)
	heartbeat := time.NewTicker(cfg.Heartbeat)
	defer heartbeat.Stop()
	reqID := mw.RequestIDFrom(r.Context())

	writeRecord := func(sr StreamRecord) {
		enc.Encode(sr) // a dead client surfaces on the read side too
		rc.Flush()
	}

	// noteOverrun folds ring-policy sheds into the checker and flips
	// the stream into the overrun state exactly once, whether the
	// trigger was the ring (events shed by the reader) or the checker
	// itself (MaxEvents). It reports whether the stream is overrun.
	var foldedShed int64
	overrunSeen := false
	noteOverrun := func() bool {
		if shed := ring.Shed(); shed > foldedShed {
			chk.AddShed(shed - foldedShed)
			foldedShed = shed
			chk.MarkOverrun()
		}
		if chk.Overrun() && !overrunSeen {
			overrunSeen = true
			s.streams.overruns.Add(1)
			obs.Emit(rec, obs.Event{Kind: obs.StreamOverrun, Run: "stream", N: chk.Stats().Events})
		}
		return chk.Overrun()
	}

	// finish emits the closing records and the obs summary, joining
	// the reader first. earlyStop is StopNone when the stream may be
	// decided definitively (ended cleanly, or overrun — chk.Finish
	// short-circuits both); otherwise it types the INCONCLUSIVE of
	// every model not already online-violated.
	finish := func(earlyStop search.StopReason, streamErr error) {
		joinReader()
		noteOverrun()
		if streamErr != nil {
			writeRecord(StreamRecord{Type: "error", Error: streamErr.Error(), RequestID: reqID})
		}
		final := s.streamFinal(rec, chk, earlyStop)
		st := chk.Stats()
		final.Stats = &st
		final.RequestID = reqID
		writeRecord(final)
		s.streams.done.Add(1)
		s.streams.events.Add(st.Events)
		s.streams.shed.Add(st.Shed)
		s.streams.sample(st)
		summary := fmt.Sprintf("LC=%s SC=%s", final.LC.Text, final.SC.Text)
		obs.Emit(rec, obs.Event{Kind: obs.StreamDone, Run: "stream", N: st.Events, Total: int(st.Shed), Str: summary})
		obs.Emit(rec, obs.Event{Kind: obs.RunEnd, Run: "stream", Str: summary})
	}

	for {
		ev, ok := ring.TryPop()
		if !ok {
			if ring.Drained() {
				break
			}
			select {
			case <-s.baseCtx.Done():
				finish(search.StopCancel, nil)
				return
			case <-heartbeat.C:
				st := chk.Stats()
				s.streams.sample(st)
				writeRecord(StreamRecord{Type: "heartbeat", Stats: &st})
			case <-time.After(time.Millisecond):
			}
			continue
		}
		v, err := chk.Ingest(ev)
		if err != nil {
			// Protocol violation (duplicate node, undelivered pred, …):
			// fatal to the stream, reported in-band.
			finish(search.StopCancel, err)
			return
		}
		if v != nil {
			s.streams.violations.Add(1)
			obs.Emit(rec, obs.Event{Kind: obs.StreamViolation, Run: "stream",
				Str: fmt.Sprintf("%s %s", joinModels(v.Models), v.Kind), N: v.Event})
			writeRecord(StreamRecord{Type: "violation", Violation: v})
		}
		if noteOverrun() {
			// Nothing past the overrun can change the outcome (the
			// checker sheds all further ingest), so finish now instead of
			// draining a degraded feed.
			finish(search.StopNone, nil)
			return
		}
	}
	// Ring drained: the reader finished (end event, clean EOF, or a
	// read/parse error).
	<-readerDone
	switch {
	case readerErr != nil:
		finish(stopReasonFor(readerErr), readerErr)
	case !chk.Ended():
		// Clean EOF without an end event: the client hung up early.
		finish(search.StopCancel, nil)
	default:
		finish(search.StopNone, nil)
	}
}

// stopReasonFor types a reader error: transport timeouts are the
// governance deadlines firing, everything else (parse errors, resets)
// is a cancellation.
func stopReasonFor(err error) search.StopReason {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return search.StopDeadline
	}
	return search.StopCancel
}

// streamReader is the producer side: it scans NDJSON lines off the
// request body under the rolling idle deadline, parses them, and
// pushes into the ring, shedding under the overflow policy when the
// checker cannot keep up. It returns nil after the end event, on clean
// EOF, or when stopped; otherwise the fatal read/parse error.
func (s *Server) streamReader(r *http.Request, rc *http.ResponseController, ring *stream.Ring, cfg StreamConfig, cutoff time.Time, stop *atomic.Bool) error {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxBodyBytes)
	overrun := false
	for sc.Scan() {
		if stop.Load() {
			return nil
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev, err := stream.ParseEvent(line)
		if err != nil {
			return err
		}
		if overrun && ev.Ev != stream.EvEnd {
			// Past the overflow point the stream is already degraded;
			// shed without waiting. (The consumer finishes the exchange
			// on its own; consuming here just keeps the socket moving
			// until it does.)
			ring.ShedOne()
			continue
		}
		if !tryPushWait(ring, ev, cfg.PushWait) {
			ring.ShedOne()
			overrun = true
			continue
		}
		if ev.Ev == stream.EvEnd {
			return nil
		}
		// Re-arm the rolling idle window, clipped to the absolute age
		// cap — whichever governance bound is nearer wins.
		if stop.Load() {
			return nil
		}
		next := time.Now().Add(cfg.IdleTimeout)
		if next.After(cutoff) {
			next = cutoff
		}
		rc.SetReadDeadline(next)
	}
	if stop.Load() {
		return nil
	}
	return sc.Err() // nil on clean EOF without an end event
}

// tryPushWait pushes with a bounded wait for ring space: brief
// backpressure absorbs checker scheduling jitter, and only a
// persistently full ring triggers the shed policy.
func tryPushWait(ring *stream.Ring, ev stream.Event, wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	for !ring.TryPush(ev) {
		if time.Now().After(deadline) {
			return false
		}
		runtime.Gosched()
	}
	return true
}

// streamFinal computes the final record's verdict block. A cleanly
// ended (or overrun — Finish short-circuits it without a search)
// stream goes through stream.Checker.Finish, the same post-mortem code
// path and wire shape as POST /v1/verify; an early cut of an intact
// stream must not run the post-mortem pass — an incomplete trace can
// look explainable — so online-violated models report VIOLATED and the
// rest the typed INCONCLUSIVE of the cut.
func (s *Server) streamFinal(rec obs.Recorder, chk *stream.Checker, earlyStop search.StopReason) StreamRecord {
	out := StreamRecord{Type: "final"}
	if earlyStop == search.StopNone {
		opts, timeout := s.cfg.Limits.searchOptions(Options{})
		ctx, cancel := s.decisionContext(timeout)
		defer cancel()
		opts.Recorder = obs.WithRun(rec, "stream-final")
		fin := chk.Finish(ctx, opts)
		out.LC = &VerifyResult{Verdict: fin.LC, Text: checker.VerdictText(fin.LC), States: fin.LCStats.States}
		if fin.LC.In() {
			out.LC.Witness = fmt.Sprintf("%v", fin.LCResult.Observer)
		}
		out.SC = &VerifyResult{Verdict: fin.SC, Text: checker.VerdictText(fin.SC), States: fin.SCStats.States}
		if fin.SC.In() {
			out.SC.Witness = fmt.Sprintf("%v", fin.SCResult.Observer)
		}
		out.Relaxed = fin.LC.In() && fin.SC.Out()
		return out
	}
	if chk.Overrun() {
		earlyStop = search.StopOverrun // data was shed: overrun outranks the cut's reason
	}
	lcViolated, scViolated := false, false
	for _, v := range chk.Violations() {
		for _, m := range v.Models {
			lcViolated = lcViolated || m == "LC"
			scViolated = scViolated || m == "SC"
		}
	}
	early := func(violated bool) *VerifyResult {
		v := search.VerdictInconclusive(earlyStop)
		if violated {
			v = search.VerdictOut()
		}
		return &VerifyResult{Verdict: v, Text: checker.VerdictText(v)}
	}
	out.LC = early(lcViolated)
	out.SC = early(scViolated)
	return out
}

// joinModels renders a violation's model list for the obs label.
func joinModels(models []string) string {
	switch len(models) {
	case 0:
		return ""
	case 1:
		return models[0]
	}
	out := models[0]
	for _, m := range models[1:] {
		out += "," + m
	}
	return out
}

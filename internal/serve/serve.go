// Package serve is the service layer of the decision stack: a
// long-running HTTP/JSON daemon (cmd/ccmd) that turns the SC/LC and
// quantified-dag deciders, the post-mortem trace checker, and the
// enumeration census into queryable endpoints:
//
//	POST /v1/check      (computation, observer) pair -> per-model verdicts
//	POST /v1/batch      many (pair, model, frontier shard) items -> per-item verdicts
//	POST /v1/verify     executed trace -> LC/SC explainability + witnesses
//	POST /v1/trace      NDJSON event stream -> incremental online verification
//	POST /v1/enumerate  universe bounds -> membership census
//	GET  /healthz       liveness ("ok" / 503 "draining")
//	GET  /statsz        queue, cache, and per-endpoint gauges as JSON
//
// Three serving-stack behaviors wrap the deciders:
//
//   - Admission control: decisions run on a fixed slot pool behind a
//     bounded wait queue; a full queue sheds load with 503 +
//     Retry-After instead of letting NP-hard searches pile up. Every
//     admitted request is governed by the server's Limits (deadline,
//     state budget, memo bytes) mapped onto search.Options.
//   - A content-addressed verdict cache: responses are keyed by the
//     canonical re-rendering of the parsed input plus the model list
//     and the governance fingerprint, with singleflight collapsing of
//     duplicate in-flight queries and LRU eviction under a byte
//     budget. Only definitive (fully decided) responses are cached.
//   - Graceful drain: Shutdown stops admission, lets in-flight
//     decisions finish, and — past a grace context — cancels them
//     through the engine's context plumbing, so the daemon exits
//     leak-free with typed INCONCLUSIVE(cancelled) verdicts instead of
//     half-written responses.
//
// The decisions themselves are the same code paths the CLIs use
// (memmodel.DecideByName, checker.Verify*Ctx, expt census), so a
// verdict or witness obtained over HTTP is byte-identical to the CLI's
// — the property the conformance suite in cmd/ccmc and cmd/verify
// pins.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/checker"
	"repro/internal/expt"
	"repro/internal/memmodel"
	"repro/internal/mw"
	"repro/internal/obs"
	"repro/internal/observer"
	"repro/internal/trace"
)

// maxBodyBytes bounds request bodies; computations worth checking are
// tiny, and an unbounded decode is a trivial memory DoS.
const maxBodyBytes = 1 << 20

// Config assembles a Server.
type Config struct {
	// Slots is the number of concurrently running decisions
	// (0 = GOMAXPROCS).
	Slots int
	// Queue is the bounded wait-queue depth behind the slots
	// (0 = 2×Slots). Requests beyond slots+queue are shed with 503.
	Queue int
	// CacheBytes is the verdict cache budget (0 disables storage;
	// singleflight collapsing stays on).
	CacheBytes int64
	// RetryAfter is the hint sent with 503 responses (0 = 1s).
	RetryAfter time.Duration
	// Limits governs every request's budgets.
	Limits Limits
	// Recorder receives the decision stack's observability events
	// (engine runs, governor firings); nil disables them.
	Recorder obs.Recorder
	// AccessLog receives one structured line per completed exchange
	// (nil disables access logging).
	AccessLog io.Writer
	// TrustedProxies are the peers whose X-Forwarded-For is believed
	// when resolving client addresses for the access log.
	TrustedProxies []netip.Prefix
	// RequestTimeout bounds the whole HTTP exchange (admission-queue
	// wait and singleflight wait included). 0 derives it from
	// Limits.ExchangeTimeout; negative disables the bound. POST
	// /v1/trace is exempt: its long-lived exchange is governed by
	// Stream's own deadlines instead.
	RequestTimeout time.Duration
	// Stream governs the /v1/trace streaming endpoint.
	Stream StreamConfig
}

// EndpointStats is one endpoint's request gauges in /statsz.
type EndpointStats struct {
	Requests  int64 `json:"requests"`
	Errors    int64 `json:"errors"`
	Shed      int64 `json:"shed"`
	InFlight  int64 `json:"in_flight"`
	LatencyMS int64 `json:"latency_ms_total"`
}

type endpointMetrics struct {
	requests, errors, shed, inFlight, latencyUS atomic.Int64
}

func (m *endpointMetrics) stats() EndpointStats {
	return EndpointStats{
		Requests:  m.requests.Load(),
		Errors:    m.errors.Load(),
		Shed:      m.shed.Load(),
		InFlight:  m.inFlight.Load(),
		LatencyMS: m.latencyUS.Load() / 1000,
	}
}

// EngineTotals is the cumulative decision-core counter block in
// /statsz: every engine search and enumeration sweep the server ran
// folds its final run stats in here. SleepSetPruned counts children
// the engine's sleep sets skipped; SymmetrySkipped counts universe
// computations the reduced census covered by orbit weighting instead
// of materializing; Orbits is the total class weight those sweeps
// credited to their representatives.
type EngineTotals struct {
	Runs            int64 `json:"runs"`
	States          int64 `json:"states"`
	MemoHits        int64 `json:"memo_hits"`
	Pruned          int64 `json:"pruned"`
	SleepSetPruned  int64 `json:"sleep_set_pruned"`
	SymmetrySkipped int64 `json:"symmetry_skipped"`
	Orbits          int64 `json:"orbits"`
}

// engineTotals is the recorder behind EngineTotals; it folds RunEnd
// stats (the merged per-run totals) and ignores every other event.
type engineTotals struct {
	runs, states, memoHits, pruned          atomic.Int64
	sleepSetPruned, symmetrySkipped, orbits atomic.Int64
}

func (t *engineTotals) Record(ev obs.Event) {
	if ev.Kind != obs.RunEnd {
		return
	}
	t.runs.Add(1)
	if st := ev.Stats; st != nil {
		t.states.Add(st.States)
		t.memoHits.Add(st.MemoHits)
		t.pruned.Add(st.Pruned)
		t.sleepSetPruned.Add(st.SleepSetPruned)
		t.symmetrySkipped.Add(st.SymmetrySkipped)
		t.orbits.Add(st.Orbits)
	}
}

func (t *engineTotals) stats() EngineTotals {
	return EngineTotals{
		Runs:            t.runs.Load(),
		States:          t.states.Load(),
		MemoHits:        t.memoHits.Load(),
		Pruned:          t.pruned.Load(),
		SleepSetPruned:  t.sleepSetPruned.Load(),
		SymmetrySkipped: t.symmetrySkipped.Load(),
		Orbits:          t.orbits.Load(),
	}
}

// RuntimeStats is the process health block in /statsz — the gauges a
// soak harness samples for goroutine and memory watermarks.
type RuntimeStats struct {
	Goroutines     int   `json:"goroutines"`
	HeapAllocBytes int64 `json:"heap_alloc_bytes"`
	HeapSysBytes   int64 `json:"heap_sys_bytes"`
	// RSSBytes is the OS-reported resident set (0 where unreadable).
	RSSBytes int64 `json:"rss_bytes"`
}

// readRuntimeStats samples the process gauges. RSS comes from
// /proc/self/statm, best-effort (0 off Linux).
func readRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: int64(ms.HeapAlloc),
		HeapSysBytes:   int64(ms.HeapSys),
	}
	if data, err := os.ReadFile("/proc/self/statm"); err == nil {
		fields := strings.Fields(string(data))
		if len(fields) >= 2 {
			if pages, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
				st.RSSBytes = pages * int64(os.Getpagesize())
			}
		}
	}
	return st
}

// Statsz is the /statsz document.
type Statsz struct {
	UptimeMS int64 `json:"uptime_ms"`
	Draining bool  `json:"draining"`
	// PanicsRecovered counts handler panics the recovery middleware
	// turned into completed 500 exchanges.
	PanicsRecovered int64          `json:"panics_recovered"`
	Admission       AdmissionStats `json:"admission"`
	Cache           CacheStats     `json:"cache"`
	Engine          EngineTotals   `json:"engine"`
	// Decisions counts model-membership decisions served per model
	// (check and batch, cache misses only — a cached verdict repeats
	// no decision). Every registered model has an entry, so a reader
	// can tell "never asked" (0) apart from "model unknown" (absent).
	Decisions map[string]int64         `json:"decisions"`
	Stream    StreamStats              `json:"stream"`
	Runtime   RuntimeStats             `json:"runtime"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

// Server is the assembled service. Create with New, expose with
// Handler, stop with Shutdown.
type Server struct {
	cfg        Config
	adm        *admission
	cache      *cache
	mux        *http.ServeMux
	handler    http.Handler // mux wrapped in the middleware stack
	start      time.Time
	baseCtx    context.Context
	baseCancel context.CancelFunc
	metrics    map[string]*endpointMetrics
	totals     engineTotals
	streams    streamTotals
	decisions  map[string]*atomic.Int64
	panics     atomic.Int64
}

// countDecision ticks the per-model decision counter behind /statsz.
func (s *Server) countDecision(model string) {
	if c := s.decisions[model]; c != nil {
		c.Add(1)
	}
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Slots <= 0 {
		cfg.Slots = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 2 * cfg.Slots
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Limits.MaxEnumNodes <= 0 {
		cfg.Limits.MaxEnumNodes = 4
	}
	cfg.Stream = cfg.Stream.withDefaults()
	s := &Server{
		cfg:   cfg,
		adm:   newAdmission(cfg.Slots, cfg.Queue),
		cache: newCache(cfg.CacheBytes),
		mux:   http.NewServeMux(),
		start: time.Now(),
		metrics: map[string]*endpointMetrics{
			"check": {}, "batch": {}, "verify": {}, "trace": {}, "enumerate": {}, "healthz": {}, "statsz": {},
		},
		decisions: make(map[string]*atomic.Int64),
	}
	for _, m := range memmodel.ModelNames() {
		s.decisions[m] = &atomic.Int64{}
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	// Every decision records through the totals recorder so /statsz
	// exposes cumulative engine counters even without a -trace/-report
	// session attached.
	s.cfg.Recorder = obs.Multi(cfg.Recorder, &s.totals)
	s.mux.HandleFunc("POST /v1/check", s.instrument("check", s.handleCheck))
	s.mux.HandleFunc("POST /v1/batch", s.instrument("batch", s.handleBatch))
	s.mux.HandleFunc("POST /v1/verify", s.instrument("verify", s.handleVerify))
	s.mux.HandleFunc("POST /v1/trace", s.instrument("trace", s.handleTrace))
	s.mux.HandleFunc("POST /v1/enumerate", s.instrument("enumerate", s.handleEnumerate))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /statsz", s.instrument("statsz", s.handleStatsz))

	// The middleware armor, outermost first: correlate (RequestID),
	// attribute (RealIP), log (AccessLog), survive (Recovery — inside
	// the log so panics log as the 500 they became), bound (Timeout —
	// innermost so the whole exchange, queue wait included, shares one
	// deadline clamped onto the governance ceilings). The streaming
	// endpoint is exempt from the exchange deadline: its lifetime is
	// governed per-stream (StreamConfig's age and idle bounds) instead
	// of per-decision.
	timeout := cfg.RequestTimeout
	if timeout == 0 {
		timeout = cfg.Limits.ExchangeTimeout()
	}
	s.handler = mw.Chain(s.mux,
		mw.RequestID(),
		mw.RealIP(cfg.TrustedProxies),
		accessLogOrNoop(cfg.AccessLog),
		mw.Recovery(s.onPanic),
		mw.TimeoutExcept(timeout, "/v1/trace"),
	)
	return s
}

// accessLogOrNoop keeps the chain uniform when access logging is off.
func accessLogOrNoop(w io.Writer) mw.Middleware {
	if w == nil {
		return func(next http.Handler) http.Handler { return next }
	}
	return mw.AccessLog(w)
}

// onPanic is the Recovery hook: count for /statsz, report the value
// and stack through obs under the exchange's request ID.
func (s *Server) onPanic(p mw.PanicInfo) {
	s.panics.Add(1)
	obs.Emit(s.cfg.Recorder, obs.Event{
		Kind: obs.PanicRecovered,
		Run:  fmt.Sprintf("%s %s %s", p.Method, p.Path, p.RequestID),
		Str:  fmt.Sprintf("%v\n%s", p.Value, p.Stack),
	})
}

// Handler returns the HTTP handler tree, wrapped in the middleware
// stack.
func (s *Server) Handler() http.Handler { return s.handler }

// Shutdown drains the server: admission stops immediately (healthz
// flips to 503, new decisions get 503 draining), in-flight decisions
// run to completion, and if ctx expires first they are cancelled
// through the engine's context plumbing (they then finish promptly
// with INCONCLUSIVE(cancelled) verdicts). Shutdown returns nil after a
// clean drain and ctx's error after a forced one; either way no
// request goroutines remain.
func (s *Server) Shutdown(ctx context.Context) error {
	drained := make(chan struct{})
	go func() {
		s.adm.drain()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.baseCancel() // hard-stop in-flight searches; they exit promptly
		<-drained
		return ctx.Err()
	}
}

// instrument wraps a handler with the per-endpoint gauges. The
// bookkeeping is deferred so a panicking handler (recovered by the
// middleware above the mux) still decrements in_flight and counts as
// an error instead of skewing the gauges forever.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	m := s.metrics[name]
	return func(w http.ResponseWriter, r *http.Request) {
		m.requests.Add(1)
		m.inFlight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		panicked := true
		defer func() {
			m.inFlight.Add(-1)
			m.latencyUS.Add(time.Since(start).Microseconds())
			if panicked || sw.code >= 400 {
				m.errors.Add(1)
				if sw.code == http.StatusServiceUnavailable {
					m.shed.Add(1)
				}
			}
		}()
		h(sw, r)
		panicked = false
	}
}

// statusWriter records the response code for the gauges.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the wrapped writer so http.ResponseController (the
// streaming handler's per-connection deadlines) and http.Flusher reach
// the real connection through the instrumentation.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// writeJSON marshals v with a trailing newline (curl-friendly).
func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil { // wire types are marshalable; this is a programming error
		http.Error(w, `{"error":"internal: marshal failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(body, '\n'))
}

// writeError completes a failed exchange; the body echoes the request
// ID so a logged error correlates without the response headers.
func writeError(w http.ResponseWriter, r *http.Request, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error(), RequestID: mw.RequestIDFrom(r.Context())})
}

// writeUnavailable maps admission failures onto 503 + Retry-After,
// rounding sub-second hints up so the header never renders "0" (which
// clients read as "retry immediately" — the opposite of backing off).
func (s *Server) writeUnavailable(w http.ResponseWriter, r *http.Request, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeError(w, r, http.StatusServiceUnavailable, err)
}

// decode reads a bounded JSON body, rejecting unknown fields so a
// misspelled option fails loudly instead of silently running
// ungoverned.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// decisionContext builds the context a decision runs under: the
// request's governed deadline, hard-stopped by Shutdown's baseCancel.
// It is deliberately NOT derived from the HTTP request context — the
// computed verdict is content-addressed and shared (singleflight,
// cache), so one impatient client must not cancel the fill its
// duplicates are waiting on.
func (s *Server) decisionContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(s.baseCtx, timeout)
	}
	return context.WithCancel(s.baseCtx)
}

// respond writes a computed-or-cached body, tagging the cache source.
func respond(w http.ResponseWriter, src cacheSource, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Ccmd-Cache", src.String())
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	models, err := validModels(req.Models, memmodel.ModelNames())
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	named, ofn, err := observer.ParsePairString(req.Pair)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if named.Comp.NumNodes() == 0 {
		writeError(w, r, http.StatusBadRequest, errors.New("pair has no nodes"))
		return
	}
	// Content address: the canonical re-rendering of the parsed pair
	// (comments, blank lines, and duplicate defaults vanish), the model
	// list, and the effective governance fingerprint.
	var canon strings.Builder
	if err := observer.FormatPair(&canon, named, ofn); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	key := Key("check", canon.String(), strings.Join(models, ","), s.cfg.Limits.optionsFingerprint(req.Options))

	rec := s.requestRecorder(r)
	body, src, err := s.cache.do(r.Context(), key, func() ([]byte, bool, error) {
		release, err := s.adm.admit(r.Context())
		if err != nil {
			return nil, false, err
		}
		defer release()
		opts, timeout := s.cfg.Limits.searchOptions(req.Options)
		ctx, cancel := s.decisionContext(timeout)
		defer cancel()

		resp := CheckResponse{Results: make([]ModelResult, 0, len(models))}
		cacheable := true
		for _, model := range models {
			opts.Recorder = obs.WithRun(rec, model)
			d, err := memmodel.DecideByName(ctx, model, named.Comp, ofn, opts)
			if err != nil { // unreachable: models were validated
				return nil, false, err
			}
			s.countDecision(model)
			mr := ModelResult{Model: model, Verdict: d.Verdict}
			switch model {
			case "SC", "TSO":
				st := SearchStats{States: d.Stats.States, MemoHits: d.Stats.MemoHits, Pruned: d.Stats.Pruned, Workers: d.Stats.Workers}
				mr.Stats = &st
				if d.Verdict.In() {
					mr.Witness = named.RenderOrder(d.Order)
				}
			case "LC":
				if d.Verdict.In() {
					for _, sort := range d.LocOrders {
						mr.LocWitnesses = append(mr.LocWitnesses, named.RenderOrder(sort))
					}
				}
			default:
				if v := d.Violation; v != nil {
					mr.Violation = fmt.Sprintf("%d: %s ≺ %s ≺ %s",
						v.Loc, named.RenderNode(v.U), named.RenderNode(v.V), named.RenderNode(v.W))
				}
			}
			cacheable = cacheable && d.Verdict.Decided
			resp.Results = append(resp.Results, mr)
		}
		body, err := json.Marshal(resp)
		return append(body, '\n'), cacheable, err
	})
	if err != nil {
		s.writeAdmissionError(w, r, err)
		return
	}
	respond(w, src, body)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	nt, err := trace.ParseTraceString(req.Trace)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	var canon strings.Builder
	if err := nt.Format(&canon); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	key := Key("verify", canon.String(), s.cfg.Limits.optionsFingerprint(req.Options))

	rec := s.requestRecorder(r)
	body, src, err := s.cache.do(r.Context(), key, func() ([]byte, bool, error) {
		release, err := s.adm.admit(r.Context())
		if err != nil {
			return nil, false, err
		}
		defer release()
		tr := nt.Trace
		if !tr.Explainable() {
			body, err := json.Marshal(VerifyResponse{Explainable: false})
			return append(body, '\n'), err == nil, err
		}
		opts, timeout := s.cfg.Limits.searchOptions(req.Options)
		ctx, cancel := s.decisionContext(timeout)
		defer cancel()

		lcOpts := opts
		lcOpts.Recorder = obs.WithRun(rec, "LC")
		lcRes, lcVerdict, lcStats := checker.VerifyLCCtx(ctx, tr, lcOpts)
		lc := &VerifyResult{Verdict: lcVerdict, Text: checker.VerdictText(lcVerdict), States: lcStats.States}
		if lcVerdict.In() {
			lc.Witness = fmt.Sprintf("%v", lcRes.Observer)
		}

		scOpts := opts
		scOpts.Recorder = obs.WithRun(rec, "SC")
		scRes, scVerdict, scStats := checker.VerifySCCtx(ctx, tr, scOpts)
		sc := &VerifyResult{Verdict: scVerdict, Text: checker.VerdictText(scVerdict), States: scStats.States}
		if scVerdict.In() {
			sc.Witness = fmt.Sprintf("%v", scRes.Observer)
		}

		resp := VerifyResponse{
			Explainable: true,
			LC:          lc,
			SC:          sc,
			Relaxed:     lcVerdict.In() && scVerdict.Out(),
		}
		body, err := json.Marshal(resp)
		cacheable := lcVerdict.Decided && scVerdict.Decided
		return append(body, '\n'), cacheable, err
	})
	if err != nil {
		s.writeAdmissionError(w, r, err)
		return
	}
	respond(w, src, body)
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	var req EnumerateRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if req.MaxNodes < 0 || req.Locs < 0 {
		writeError(w, r, http.StatusBadRequest, errors.New("max_nodes and locs must be non-negative"))
		return
	}
	n := req.MaxNodes
	if n == 0 || n > s.cfg.Limits.MaxEnumNodes {
		n = s.cfg.Limits.MaxEnumNodes
	}
	locs := req.Locs
	if locs == 0 {
		locs = 1
	}
	workers := req.Workers
	if workers < 0 {
		workers = 0
	}
	key := Key("enumerate", strconv.Itoa(n), strconv.Itoa(locs))

	rec := s.requestRecorder(r)
	body, src, err := s.cache.do(r.Context(), key, func() ([]byte, bool, error) {
		release, err := s.adm.admit(r.Context())
		if err != nil {
			return nil, false, err
		}
		defer release()
		// MaxEnumNodes is the admission-time bound that keeps the sweep
		// tractable; the decision context cancels it mid-flight on drain
		// or timeout. The reduced sweep decides one representative per
		// isomorphism class (identical table, far fewer decisions) and
		// feeds the /statsz symmetry gauges.
		ctx, cancel := s.decisionContext(s.cfg.Limits.DefaultTimeout)
		defer cancel()
		census, err := expt.MembershipCensusReducedObs(ctx, n, locs, workers, rec)
		if err != nil {
			return nil, false, err
		}
		body, err := json.Marshal(EnumerateResponse{MaxNodes: n, Locs: locs, Census: census})
		return append(body, '\n'), err == nil, err
	})
	if err != nil {
		s.writeAdmissionError(w, r, err)
		return
	}
	respond(w, src, body)
}

// requestRecorder threads the exchange's request ID into the decision
// event stream: every run label the handler's fill produces is
// prefixed with it, so a report or trace line correlates back to the
// access log. Falls back to the raw recorder when no RequestID
// middleware wrapped the exchange.
func (s *Server) requestRecorder(r *http.Request) obs.Recorder {
	if id := mw.RequestIDFrom(r.Context()); id != "" {
		return obs.WithRunPrefix(s.cfg.Recorder, id+" ")
	}
	return s.cfg.Recorder
}

// writeAdmissionError distinguishes shed/drain (503) from client
// aborts while queued (499-style; Go has no constant, use 503 as well
// but without Retry-After semantics confusion — the client is gone).
func (s *Server) writeAdmissionError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrDraining):
		s.writeUnavailable(w, r, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client gave up (or its exchange deadline fired) while
		// queued or waiting on a shared fill; nobody may be reading, but
		// complete the exchange for middleware's sake.
		writeError(w, r, http.StatusServiceUnavailable, err)
	default:
		writeError(w, r, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.adm.stats().Draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	adm := s.adm.stats()
	doc := Statsz{
		UptimeMS:        time.Since(s.start).Milliseconds(),
		Draining:        adm.Draining,
		PanicsRecovered: s.panics.Load(),
		Admission:       adm,
		Cache:           s.cache.stats(),
		Engine:          s.totals.stats(),
		Decisions:       make(map[string]int64, len(s.decisions)),
		Stream:          s.streams.stats(),
		Runtime:         readRuntimeStats(),
		Endpoints:       make(map[string]EndpointStats, len(s.metrics)),
	}
	for name, m := range s.metrics {
		doc.Endpoints[name] = m.stats()
	}
	for model, c := range s.decisions {
		doc.Decisions[model] = c.Load()
	}
	writeJSON(w, http.StatusOK, doc)
}

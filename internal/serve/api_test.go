package serve

import (
	"testing"
	"time"
)

func TestClampInt64(t *testing.T) {
	cases := []struct {
		req, max, want int64
	}{
		{0, 0, 0},    // no ceiling, no request: unlimited
		{5, 0, 5},    // no ceiling: request passes through
		{0, 10, 10},  // no request: ceiling is the default
		{5, 10, 5},   // under ceiling: honored
		{15, 10, 10}, // over ceiling: capped
		{-1, 10, 10}, // negative: treated as "default"
	}
	for _, tc := range cases {
		if got := clampInt64(tc.req, tc.max); got != tc.want {
			t.Errorf("clampInt64(%d, %d) = %d, want %d", tc.req, tc.max, got, tc.want)
		}
	}
}

func TestSearchOptionsClamping(t *testing.T) {
	l := Limits{
		DefaultTimeout: 2 * time.Second,
		MaxTimeout:     10 * time.Second,
		MaxStates:      1000,
		MaxMemoMB:      8,
		MaxWorkers:     4,
	}
	opts, timeout := l.searchOptions(Options{})
	if opts.Budget != 1000 || opts.MaxMemoBytes != 8<<20 || opts.Workers != 4 {
		t.Errorf("defaults not applied: %+v", opts)
	}
	if timeout != 2*time.Second {
		t.Errorf("default timeout = %v, want 2s", timeout)
	}

	opts, timeout = l.searchOptions(Options{TimeoutMS: 500, MaxStates: 100, MaxMemoMB: 2, Workers: 2})
	if opts.Budget != 100 || opts.MaxMemoBytes != 2<<20 || opts.Workers != 2 {
		t.Errorf("under-limit request not honored: %+v", opts)
	}
	if timeout != 500*time.Millisecond {
		t.Errorf("timeout = %v, want 500ms", timeout)
	}

	opts, timeout = l.searchOptions(Options{TimeoutMS: 60_000, MaxStates: 1 << 40, Workers: 99})
	if opts.Budget != 1000 || opts.Workers != 4 {
		t.Errorf("over-limit request not capped: %+v", opts)
	}
	if timeout != 10*time.Second {
		t.Errorf("timeout = %v, want capped at 10s", timeout)
	}
}

func TestSearchOptionsNoLimits(t *testing.T) {
	opts, timeout := Limits{}.searchOptions(Options{MaxStates: 7, Workers: 3})
	if opts.Budget != 7 || opts.Workers != 3 || timeout != 0 {
		t.Errorf("limitless server altered the request: %+v, %v", opts, timeout)
	}
}

// TestOptionsFingerprintExcludesTimeout: the timeout only shapes
// INCONCLUSIVE outcomes, which are never cached, so it must not
// fragment the cache key space.
func TestOptionsFingerprintExcludesTimeout(t *testing.T) {
	l := Limits{MaxStates: 1000}
	a := l.optionsFingerprint(Options{TimeoutMS: 100})
	b := l.optionsFingerprint(Options{TimeoutMS: 9000})
	if a != b {
		t.Errorf("fingerprint varies with timeout: %q vs %q", a, b)
	}
	if l.optionsFingerprint(Options{MaxStates: 10}) == a {
		t.Error("fingerprint ignores the state budget")
	}
}

func TestValidModels(t *testing.T) {
	known := []string{"SC", "LC", "NN"}
	got, err := validModels(nil, known)
	if err != nil || len(got) != 3 {
		t.Errorf("nil request = %v, %v; want all known", got, err)
	}
	got, err = validModels([]string{"LC", "SC"}, known)
	if err != nil || got[0] != "LC" || got[1] != "SC" {
		t.Errorf("order not preserved: %v, %v", got, err)
	}
	if _, err := validModels([]string{"TSO"}, known); err == nil {
		t.Error("unknown model accepted")
	}
}

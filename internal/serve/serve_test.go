package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/expt"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ---- helpers -------------------------------------------------------

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func checkVerdicts(t *testing.T, data []byte) map[string]ModelResult {
	t.Helper()
	var resp CheckResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("bad check response %s: %v", data, err)
	}
	out := make(map[string]ModelResult, len(resp.Results))
	for _, r := range resp.Results {
		out[r.Model] = r
	}
	return out
}

func statsz(t *testing.T, base string) Statsz {
	t.Helper()
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc Statsz
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// govTrace mirrors the engine governance tests' randomized checker
// instances; seed 11 is pinned there as undecided after minutes of
// work — the slow request the load-shed and drain tests lean on.
func govTrace(seed int64, layers, width int, p float64, locs, vals, wprob int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	g := dag.RandomLayered(rng, layers, width, p)
	n := g.NumNodes()
	ops := make([]computation.Op, n)
	for i := range ops {
		l := computation.Loc(rng.Intn(locs))
		if rng.Intn(wprob) == 0 {
			ops[i] = computation.W(l)
		} else {
			ops[i] = computation.R(l)
		}
	}
	c := computation.MustFrom(g, ops, locs)
	tr := trace.New(c)
	for u := 0; u < n; u++ {
		switch c.Op(dag.Node(u)).Kind {
		case computation.Write:
			tr.WriteVal[u] = trace.Value(rng.Intn(vals) + 1)
		case computation.Read:
			tr.ReadVal[u] = trace.Value(rng.Intn(vals) + 1)
		}
	}
	return tr
}

// renderTraceText writes tr in the verify text format.
func renderTraceText(tr *trace.Trace) string {
	c := tr.Comp
	var b strings.Builder
	b.WriteString("locs")
	for l := 0; l < c.NumLocs(); l++ {
		fmt.Fprintf(&b, " l%d", l)
	}
	b.WriteByte('\n')
	for u := 0; u < c.NumNodes(); u++ {
		op := c.Op(dag.Node(u))
		switch op.Kind {
		case computation.Write:
			fmt.Fprintf(&b, "node n%d W(l%d) = %d\n", u, op.Loc, tr.WriteVal[u])
		case computation.Read:
			fmt.Fprintf(&b, "node n%d R(l%d) = %d\n", u, op.Loc, tr.ReadVal[u])
		}
	}
	for u := 0; u < c.NumNodes(); u++ {
		for _, v := range c.Dag().Succs(dag.Node(u)) {
			fmt.Fprintf(&b, "edge n%d n%d\n", u, v)
		}
	}
	return b.String()
}

func slowTraceText() string {
	return renderTraceText(govTrace(11, 30, 8, 0.08, 2, 3, 3))
}

// ---- functional endpoint tests -------------------------------------

// TestCheckFigure2 pins the service's verdicts for the paper's
// Figure 2 pair against the published classification: in WW and NW,
// outside WN and NN (and outside SC and LC).
func TestCheckFigure2(t *testing.T) {
	_, ts := testServer(t, Config{CacheBytes: 1 << 20})
	resp, data := postJSON(t, ts.URL+"/v1/check", CheckRequest{Pair: readTestdata(t, "figure2.ccm")})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	got := checkVerdicts(t, data)
	want := map[string]string{"SC": "OUT", "LC": "OUT", "NN": "OUT", "NW": "IN", "WN": "OUT", "WW": "IN"}
	for model, verdict := range want {
		if got[model].Verdict.String() != verdict {
			t.Errorf("%s = %s, want %s", model, got[model].Verdict, verdict)
		}
	}
	if got["SC"].Stats == nil {
		t.Error("SC result missing engine stats")
	}
	for _, model := range []string{"NN", "WN"} {
		if got[model].Violation == "" {
			t.Errorf("%s is OUT but has no violating triple", model)
		}
	}
}

// TestCheckDekkerWitnessAndCacheHit: Dekker is the separator (in LC,
// not SC); its LC witnesses must come back rendered with the file's
// node names, and an identical repeated query must be served from the
// verdict cache, byte for byte.
func TestCheckDekkerWitnessAndCacheHit(t *testing.T) {
	_, ts := testServer(t, Config{CacheBytes: 1 << 20})
	req := CheckRequest{Pair: readTestdata(t, "dekker.ccm")}

	resp1, data1 := postJSON(t, ts.URL+"/v1/check", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, data1)
	}
	if src := resp1.Header.Get("X-Ccmd-Cache"); src != "miss" {
		t.Errorf("first query cache source %q, want miss", src)
	}
	got := checkVerdicts(t, data1)
	if !got["LC"].Verdict.In() || got["SC"].Verdict.String() != "OUT" {
		t.Fatalf("dekker verdicts: LC %s, SC %s; want IN, OUT", got["LC"].Verdict, got["SC"].Verdict)
	}
	if len(got["LC"].LocWitnesses) != 2 {
		t.Fatalf("LC witnesses = %v, want one per location", got["LC"].LocWitnesses)
	}
	for _, w := range got["LC"].LocWitnesses {
		for _, name := range []string{"W1", "R1", "W2", "R2"} {
			if !strings.Contains(w, name) {
				t.Errorf("witness %q missing node %s", w, name)
			}
		}
	}

	resp2, data2 := postJSON(t, ts.URL+"/v1/check", req)
	if src := resp2.Header.Get("X-Ccmd-Cache"); src != "hit" {
		t.Errorf("repeated query cache source %q, want hit", src)
	}
	if !bytes.Equal(data1, data2) {
		t.Error("cached response differs from computed response")
	}
	st := statsz(t, ts.URL)
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", st.Cache)
	}
}

// TestCheckCanonicalKey: cosmetically different spellings of the same
// pair (comments, blank lines) hit the same cache entry.
func TestCheckCanonicalKey(t *testing.T) {
	_, ts := testServer(t, Config{CacheBytes: 1 << 20})
	postJSON(t, ts.URL+"/v1/check", CheckRequest{Pair: readTestdata(t, "dekker.ccm")})
	// Same computation, comments stripped and spacing changed.
	variant := "locs x y\nnode W1 W(x)\nnode R1 R(y)\nnode W2 W(y)\nnode R2 R(x)\n" +
		"edge W1 R1\nedge W2 R2\nobserve R1 x W1\nobserve R2 y W2\n"
	resp, data := postJSON(t, ts.URL+"/v1/check", CheckRequest{Pair: variant})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if src := resp.Header.Get("X-Ccmd-Cache"); src != "hit" {
		t.Errorf("canonically equal pair was a cache %q, want hit", src)
	}
}

func TestCheckBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"invalid json", `{`},
		{"unknown field", `{"pair":"locs x\nnode A W(x)","modles":["SC"]}`},
		{"unknown model", `{"pair":"locs x\nnode A W(x)","models":["PSO"]}`},
		{"bad pair text", `{"pair":"locs x\nnode A FLY(x)"}`},
		{"empty pair", `{"pair":""}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, data)
		}
		var e ErrorResponse
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %s not an ErrorResponse", tc.name, data)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/check"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/check: status %d, want 405", resp.StatusCode)
		}
	}
}

// TestCheckInconclusiveNotCached: a budget-starved query yields a
// typed INCONCLUSIVE(budget) verdict over the wire and must NOT be
// cached — a retry with the same key may have a larger server budget
// someday, and a cached inconclusive would pin the failure.
func TestCheckInconclusiveNotCached(t *testing.T) {
	_, ts := testServer(t, Config{CacheBytes: 1 << 20})
	req := CheckRequest{
		Pair:    readTestdata(t, "dekker.ccm"),
		Models:  []string{"SC"},
		Options: Options{MaxStates: 1},
	}
	resp, data := postJSON(t, ts.URL+"/v1/check", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	got := checkVerdicts(t, data)
	if got["SC"].Verdict.String() != "INCONCLUSIVE(budget)" {
		t.Fatalf("SC = %s, want INCONCLUSIVE(budget)", got["SC"].Verdict)
	}
	resp2, _ := postJSON(t, ts.URL+"/v1/check", req)
	if src := resp2.Header.Get("X-Ccmd-Cache"); src != "miss" {
		t.Errorf("inconclusive response was cached (%q)", src)
	}
}

func TestVerifyMessagePassing(t *testing.T) {
	_, ts := testServer(t, Config{CacheBytes: 1 << 20})
	resp, data := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Trace: readTestdata(t, "mp_stale.trace")})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	if !vr.Explainable || vr.LC == nil || vr.SC == nil {
		t.Fatalf("response %s missing checks", data)
	}
	if vr.LC.Text != "explainable" || vr.SC.Text != "VIOLATED" || !vr.Relaxed {
		t.Errorf("mp_stale: LC %q SC %q relaxed %v; want explainable/VIOLATED/true", vr.LC.Text, vr.SC.Text, vr.Relaxed)
	}
	if vr.LC.Witness == "" {
		t.Error("explainable LC check returned no witness observer")
	}
	if vr.SC.Witness != "" {
		t.Error("violated SC check returned a witness")
	}
}

func TestVerifyCoherenceViolation(t *testing.T) {
	_, ts := testServer(t, Config{CacheBytes: 1 << 20})
	_, data := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Trace: readTestdata(t, "corr_violation.trace")})
	var vr VerifyResponse
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	if !vr.Explainable {
		t.Fatal("corr_violation is value-explainable; searches should have run")
	}
	if vr.LC.Text != "VIOLATED" || vr.SC.Text != "VIOLATED" || vr.Relaxed {
		t.Errorf("corr_violation: LC %q SC %q relaxed %v; want VIOLATED/VIOLATED/false", vr.LC.Text, vr.SC.Text, vr.Relaxed)
	}
}

func TestEnumerateClampedAndCached(t *testing.T) {
	_, ts := testServer(t, Config{CacheBytes: 1 << 20, Limits: Limits{MaxEnumNodes: 3}})
	resp, data := postJSON(t, ts.URL+"/v1/enumerate", EnumerateRequest{MaxNodes: 99, Workers: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var er EnumerateResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.MaxNodes != 3 || er.Locs != 1 {
		t.Errorf("bounds = (%d, %d), want clamped (3, 1)", er.MaxNodes, er.Locs)
	}
	if want := expt.MembershipCensusParallel(3, 1, 2); er.Census != want {
		t.Errorf("census differs from the enumerate CLI's:\n%q\n%q", er.Census, want)
	}
	resp2, _ := postJSON(t, ts.URL+"/v1/enumerate", EnumerateRequest{MaxNodes: 3})
	if src := resp2.Header.Get("X-Ccmd-Cache"); src != "hit" {
		t.Errorf("repeated census was a cache %q, want hit", src)
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}
	st := statsz(t, ts.URL)
	if st.Endpoints["healthz"].Requests != 1 {
		t.Errorf("healthz requests = %d, want 1", st.Endpoints["healthz"].Requests)
	}
	if st.Admission.Slots <= 0 || st.Admission.Queue <= 0 {
		t.Errorf("admission defaults not applied: %+v", st.Admission)
	}
}

// ---- acceptance: load shed + drain under -race ---------------------

// TestLoadShedBurst drives the admission path end to end: with the
// single decision slot pinned by a minutes-long verification and the
// queue full, a burst of further queries must be shed with 503 +
// Retry-After while cache hits keep flowing; shutdown then cancels the
// pinned search promptly and nothing leaks.
func TestLoadShedBurst(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := testServer(t, Config{Slots: 1, Queue: 1, CacheBytes: 1 << 20})

	// Pin the slot with the slow verification.
	slowDone := make(chan *http.Response, 1)
	go func() {
		resp, data := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Trace: slowTraceText()})
		_ = data
		slowDone <- resp
	}()
	waitFor(t, func() bool { return s.adm.stats().Running == 1 })

	// Fill the queue with a (fast, but stuck-behind-the-slot) check.
	queuedDone := make(chan []byte, 1)
	go func() {
		resp, data := postJSON(t, ts.URL+"/v1/check", CheckRequest{Pair: readTestdata(t, "dekker.ccm")})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("queued request: status %d: %s", resp.StatusCode, data)
		}
		queuedDone <- data
	}()
	waitFor(t, func() bool { return s.adm.stats().Waiting == 1 })

	// The burst beyond the queue bound is shed.
	for i := 0; i < 3; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/check", CheckRequest{Pair: readTestdata(t, "figure2.ccm")})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("burst %d: status %d, want 503; body %s", i, resp.StatusCode, data)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("503 without Retry-After")
		}
	}
	if st := statsz(t, ts.URL); st.Admission.Shed < 3 || st.Endpoints["check"].Shed < 3 {
		t.Errorf("shed not counted: %+v / %+v", st.Admission, st.Endpoints["check"])
	}

	// Shutdown with a short grace: the pinned search is cancelled
	// through the engine and both in-flight requests complete.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Errorf("forced shutdown err = %v, want DeadlineExceeded", err)
	}
	slow := <-slowDone
	if slow.StatusCode != http.StatusOK {
		t.Errorf("cancelled verification: status %d, want 200 with inconclusive verdicts", slow.StatusCode)
	}
	<-queuedDone
	ts.Close() // waits for handler goroutines
	waitGoroutines(t, base)
}

// TestGracefulDrain is the SIGTERM contract: draining stops admission
// (healthz flips, new work gets 503 draining) while admitted work —
// including work still waiting in the queue — runs to completion, and
// the drained server leaks nothing.
func TestGracefulDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := testServer(t, Config{Slots: 1, Queue: 2, CacheBytes: 1 << 20})

	// Hold the only slot directly, then queue a real request behind it.
	release, err := s.adm.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan map[string]ModelResult, 1)
	go func() {
		resp, data := postJSON(t, ts.URL+"/v1/check", CheckRequest{Pair: readTestdata(t, "dekker.ccm")})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("queued request: status %d: %s", resp.StatusCode, data)
			queued <- nil
			return
		}
		queued <- checkVerdicts(t, data)
	}()
	waitFor(t, func() bool { return s.adm.stats().Waiting == 1 })

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	waitFor(t, func() bool { return s.adm.stats().Draining })

	// Admission is closed: healthz 503, new decisions 503.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", resp.StatusCode)
	}
	r2, data := postJSON(t, ts.URL+"/v1/check", CheckRequest{Pair: readTestdata(t, "figure2.ccm")})
	if r2.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(data), "draining") {
		t.Errorf("new work during drain = %d %s, want 503 draining", r2.StatusCode, data)
	}
	select {
	case <-shutdownDone:
		t.Fatal("shutdown returned while a request was still queued")
	default:
	}

	// Free the slot: the queued request runs to completion and the
	// drain finishes cleanly.
	release()
	got := <-queued
	if got == nil {
		t.Fatal("queued request failed during drain")
	}
	if !got["LC"].Verdict.In() {
		t.Errorf("drained request returned wrong verdict: LC %s", got["LC"].Verdict)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("clean drain returned %v", err)
	}
	ts.Close()
	waitGoroutines(t, base)
}

// TestStatszEngineTotals: decisions accumulate into the cumulative
// /statsz engine block — an enumerate sweep feeds the symmetry gauges
// (orbit totals, skipped computations) and every run bumps the count.
func TestStatszEngineTotals(t *testing.T) {
	_, ts := testServer(t, Config{Limits: Limits{MaxEnumNodes: 3}})
	if st := statsz(t, ts.URL); st.Engine.Runs != 0 {
		t.Fatalf("fresh server has %d engine runs, want 0", st.Engine.Runs)
	}
	resp, data := postJSON(t, ts.URL+"/v1/enumerate", EnumerateRequest{MaxNodes: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enumerate status %d: %s", resp.StatusCode, data)
	}
	st := statsz(t, ts.URL)
	if st.Engine.Runs == 0 {
		t.Error("engine.runs still 0 after an enumerate sweep")
	}
	// ≤3 nodes, 1 location: 238 computations, of which only the
	// canonical representatives were materialized.
	if st.Engine.Orbits != 238 {
		t.Errorf("engine.orbits = %d, want 238 universe computations", st.Engine.Orbits)
	}
	if st.Engine.SymmetrySkipped <= 0 || st.Engine.SymmetrySkipped >= st.Engine.Orbits {
		t.Errorf("engine.symmetry_skipped = %d, want in (0, %d)", st.Engine.SymmetrySkipped, st.Engine.Orbits)
	}
	if st.Engine.States <= 0 {
		t.Errorf("engine.states = %d, want > 0", st.Engine.States)
	}
}

// TestStatszDecisionCounters: /statsz exposes one decision counter per
// registered model — TSO, RA, and CAUSAL included — pre-seeded to 0 so
// a reader can tell "never asked" apart from "model unknown", ticked on
// cache misses only.
func TestStatszDecisionCounters(t *testing.T) {
	_, ts := testServer(t, Config{CacheBytes: 1 << 20})
	st := statsz(t, ts.URL)
	for _, m := range memmodel.ModelNames() {
		if n, ok := st.Decisions[m]; !ok || n != 0 {
			t.Errorf("fresh decisions[%s] = %d, %v; want 0, present", m, n, ok)
		}
	}
	req := CheckRequest{Pair: readTestdata(t, "figure2.ccm")}
	if resp, data := postJSON(t, ts.URL+"/v1/check", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("check status %d: %s", resp.StatusCode, data)
	}
	st = statsz(t, ts.URL)
	for _, m := range memmodel.ModelNames() {
		if st.Decisions[m] != 1 {
			t.Errorf("decisions[%s] = %d after one full check, want 1", m, st.Decisions[m])
		}
	}
	// A cached repeat answers without deciding anything again.
	if resp, data := postJSON(t, ts.URL+"/v1/check", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat check status %d: %s", resp.StatusCode, data)
	}
	st = statsz(t, ts.URL)
	for _, m := range memmodel.ModelNames() {
		if st.Decisions[m] != 1 {
			t.Errorf("decisions[%s] = %d after cached repeat, want still 1", m, st.Decisions[m])
		}
	}
}

// ---- middleware armor ----------------------------------------------

// TestRetryAfterRounding: sub-second RetryAfter hints must round UP to
// a whole second — a "Retry-After: 0" tells clients to hammer a server
// that just shed them.
func TestRetryAfterRounding(t *testing.T) {
	cases := []struct {
		hint time.Duration
		want string
	}{
		{300 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{0, "1"}, // config default
	}
	for _, tc := range cases {
		s := New(Config{RetryAfter: tc.hint})
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, "/v1/check", nil)
		s.writeUnavailable(w, r, ErrOverloaded)
		if got := w.Header().Get("Retry-After"); got != tc.want {
			t.Errorf("RetryAfter %v rendered %q, want %q", tc.hint, got, tc.want)
		}
		if got := w.Header().Get("Retry-After"); got == "0" {
			t.Errorf("RetryAfter %v rendered the poisonous 0", tc.hint)
		}
	}
}

// panicOnceRecorder panics on the first RunStart it sees — injected
// through Config.Recorder it makes the first decision blow up inside
// the handler, on the request goroutine, like a real decision-path bug
// would.
type panicOnceRecorder struct{ fired atomic.Bool }

func (p *panicOnceRecorder) Record(ev obs.Event) {
	if ev.Kind == obs.RunStart && p.fired.CompareAndSwap(false, true) {
		panic("injected decision panic")
	}
}

// TestPanicRecoveryKeepsServing is the regression for the naked-panic
// failure mode: a panicking decision must come back as a 500 carrying
// a request ID (header and body), count in /statsz, and leave the
// server fully serving — the same query succeeds on retry because the
// panic-failed flight was cleaned up.
func TestPanicRecoveryKeepsServing(t *testing.T) {
	rec := &panicOnceRecorder{}
	s, ts := testServer(t, Config{CacheBytes: 1 << 20, Recorder: rec})
	req := CheckRequest{Pair: readTestdata(t, "figure2.ccm")}

	resp, data := postJSON(t, ts.URL+"/v1/check", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking decision returned %d, want 500; body %s", resp.StatusCode, data)
	}
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("500 response carries no X-Request-Id")
	}
	if !strings.Contains(string(data), id) {
		t.Errorf("500 body %s does not echo the request id %s", data, id)
	}

	// The server keeps serving: the identical query now succeeds (the
	// panicked flight did not wedge the key) and the panic is counted.
	resp2, data2 := postJSON(t, ts.URL+"/v1/check", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry after panic returned %d: %s", resp2.StatusCode, data2)
	}
	got := checkVerdicts(t, data2)
	if got["SC"].Verdict.String() != "OUT" {
		t.Errorf("retry verdict SC = %s, want OUT", got["SC"].Verdict)
	}
	st := statsz(t, ts.URL)
	if st.PanicsRecovered != 1 {
		t.Errorf("statsz panics_recovered = %d, want 1", st.PanicsRecovered)
	}
	if st.Endpoints["check"].InFlight != 0 {
		t.Errorf("in_flight stuck at %d after a recovered panic", st.Endpoints["check"].InFlight)
	}
	if st.Endpoints["check"].Errors < 1 {
		t.Errorf("recovered panic not counted as an endpoint error: %+v", st.Endpoints["check"])
	}
	_ = s
}

// TestRequestIDOnEveryResponse: every response — success, client
// error, health probe — carries a request ID, inbound ids are
// propagated, and error bodies echo them.
func TestRequestIDOnEveryResponse(t *testing.T) {
	_, ts := testServer(t, Config{CacheBytes: 1 << 20})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("healthz response carries no request id")
	}

	resp, data := postJSON(t, ts.URL+"/v1/check", CheckRequest{Pair: readTestdata(t, "figure2.ccm")})
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Request-Id") == "" {
		t.Errorf("check response (%d) carries no request id", resp.StatusCode)
	}
	_ = data

	// Inbound id propagated, echoed in the error body.
	reqBody := strings.NewReader(`{"pair":"locs x\nnode A FLY(x)"}`)
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/check", reqBody)
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("X-Request-Id", "caller-supplied-42")
	resp, err = http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad pair = %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "caller-supplied-42" {
		t.Errorf("inbound id not propagated: header %q", got)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil || e.RequestID != "caller-supplied-42" {
		t.Errorf("error body %s does not echo the inbound request id", data)
	}
}

// TestStatszRuntime: the process-health block the soak harness samples
// for watermarks is populated.
func TestStatszRuntime(t *testing.T) {
	_, ts := testServer(t, Config{})
	st := statsz(t, ts.URL)
	if st.Runtime.Goroutines <= 0 {
		t.Errorf("runtime.goroutines = %d, want > 0", st.Runtime.Goroutines)
	}
	if st.Runtime.HeapAllocBytes <= 0 || st.Runtime.HeapSysBytes <= 0 {
		t.Errorf("runtime heap gauges empty: %+v", st.Runtime)
	}
}

// TestAccessLogWired: with Config.AccessLog set, each exchange logs
// one structured line carrying its request id and status.
func TestAccessLogWired(t *testing.T) {
	var buf syncLogBuffer
	_, ts := testServer(t, Config{AccessLog: &buf})
	resp, _ := postJSON(t, ts.URL+"/v1/check", CheckRequest{Pair: readTestdata(t, "figure2.ccm")})
	id := resp.Header.Get("X-Request-Id")
	log := buf.String()
	if !strings.Contains(log, "path=/v1/check") || !strings.Contains(log, "status=200") {
		t.Errorf("access log %q missing exchange fields", log)
	}
	if id == "" || !strings.Contains(log, "id="+id) {
		t.Errorf("access log %q does not carry the request id %q", log, id)
	}
}

// syncLogBuffer is a concurrency-safe strings.Builder for access-log
// assertions.
type syncLogBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncLogBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncLogBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

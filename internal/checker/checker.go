// Package checker implements post-mortem verification: given an
// executed trace (computation + values), decide whether some observer
// function in a memory model explains it. This is the computation-
// centric analogue of Gibbons & Korach's after-the-fact sequential-
// consistency verification ([GK94], cited in Sections 1 and 7).
//
// For the serialization-based models the checker does not enumerate
// observer functions: it runs the same pruned backtracking as the
// model deciders, but constrained only at read nodes (whose candidate
// writer sets come from value equality), which scales to traces far
// beyond the exhaustive-enumeration experiments.
package checker

import (
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
	"repro/internal/trace"
)

// Result reports a verification outcome with a witness when positive.
type Result struct {
	OK bool
	// Observer is a full observer function explaining the trace, when
	// the checker constructs one (VerifyModel does; the serialization
	// checkers reconstruct it from their witness sorts).
	Observer *observer.Observer
}

// constraints[l][u] is the allowed writer set for node u at location l,
// or nil when unconstrained. allowBottom is tracked via presence of
// observer.Bottom in the slice.
type constraints [][][]dag.Node

func buildConstraints(t *trace.Trace) (constraints, bool) {
	c := t.Comp
	cons := make(constraints, c.NumLocs())
	for l := range cons {
		cons[l] = make([][]dag.Node, c.NumNodes())
	}
	for u := 0; u < c.NumNodes(); u++ {
		op := c.Op(dag.Node(u))
		if op.Kind != computation.Read {
			continue
		}
		cands := t.Candidates(dag.Node(u))
		if len(cands) == 0 {
			return nil, false
		}
		cons[op.Loc][u] = cands
	}
	return cons, true
}

func allowed(cons constraints, l computation.Loc, u, w dag.Node) bool {
	set := cons[l][u]
	if set == nil {
		return true
	}
	for _, x := range set {
		if x == w {
			return true
		}
	}
	return false
}

// searchConstrained looks for a topological sort T of the trace's
// computation such that, for every location l in locs and every node u
// with a constraint, W_T(l, u) lies in the allowed set. It returns the
// witnessing sort. budget, when positive, caps the number of search
// states explored; on exhaustion the third result is false.
func searchConstrained(t *trace.Trace, cons constraints, locs []computation.Loc, budget int) ([]dag.Node, bool, bool) {
	c := t.Comp
	n := c.NumNodes()
	if n == 0 {
		return []dag.Node{}, true, true
	}
	g := c.Dag()
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		indeg[u] = g.InDegree(dag.Node(u))
	}
	last := make([]dag.Node, len(locs))
	for i := range last {
		last[i] = observer.Bottom
	}
	placed := make([]bool, n)
	failed := make(map[string]struct{})
	order := make([]dag.Node, 0, n)

	keyBuf := make([]byte, 0, n/8+1+2*len(locs))
	stateKey := func() string {
		keyBuf = keyBuf[:0]
		var acc byte
		for u := 0; u < n; u++ {
			acc = acc << 1
			if placed[u] {
				acc |= 1
			}
			if u%8 == 7 {
				keyBuf = append(keyBuf, acc)
				acc = 0
			}
		}
		keyBuf = append(keyBuf, acc)
		for _, w := range last {
			keyBuf = append(keyBuf, byte(w), byte(int32(w)>>8))
		}
		return string(keyBuf)
	}

	states := 0
	exhausted := true

	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		if remaining == 0 {
			return true
		}
		states++
		if budget > 0 && states > budget {
			exhausted = false
			return false
		}
		key := stateKey()
		if _, bad := failed[key]; bad {
			return false
		}
		for u := 0; u < n; u++ {
			if placed[u] || indeg[u] != 0 {
				continue
			}
			node := dag.Node(u)
			ok := true
			for i, l := range locs {
				have := last[i]
				if c.Op(node).IsWriteTo(l) {
					have = node
				}
				if !allowed(cons, l, node, have) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			placed[u] = true
			order = append(order, node)
			var saved []dag.Node
			for i, l := range locs {
				if c.Op(node).IsWriteTo(l) {
					saved = append(saved, dag.Node(i), last[i])
					last[i] = node
				}
			}
			for _, v := range g.Succs(node) {
				indeg[v]--
			}
			if rec(remaining - 1) {
				return true
			}
			for _, v := range g.Succs(node) {
				indeg[v]++
			}
			for i := 0; i < len(saved); i += 2 {
				last[saved[i]] = saved[i+1]
			}
			order = order[:len(order)-1]
			placed[u] = false
		}
		if exhausted {
			failed[key] = struct{}{}
		}
		return false
	}
	if rec(n) {
		return order, true, true
	}
	return nil, false, exhausted
}

// VerifySC decides whether the trace is explainable under sequential
// consistency: some single topological sort's last-writer semantics
// produce exactly the observed read values. On success the witness
// observer is the last-writer observer of the sort. The decision is
// exact but worst-case exponential (the problem is NP-complete [GK94]);
// use VerifySCBudget on large traces.
func VerifySC(t *trace.Trace) Result {
	res, _ := VerifySCBudget(t, 0)
	return res
}

// VerifySCBudget is VerifySC with a cap on explored search states
// (0 = unlimited). The second result reports whether the search was
// exhaustive: if false, the trace may or may not be SC. Per-location
// serializability (a relaxation of SC) is checked first, so many
// non-SC traces are rejected exactly even under a budget.
func VerifySCBudget(t *trace.Trace, budget int) (Result, bool) {
	if err := t.Validate(); err != nil {
		return Result{}, true
	}
	cons, ok := buildConstraints(t)
	if !ok {
		return Result{}, true
	}
	// Necessary condition, checked in polynomial time: every location
	// must be independently serializable.
	for l := computation.Loc(0); int(l) < t.Comp.NumLocs(); l++ {
		if _, ok := serializeLocChoices(t.Comp, l, cons[l]); !ok {
			return Result{}, true
		}
	}
	locs := make([]computation.Loc, t.Comp.NumLocs())
	for l := range locs {
		locs[l] = computation.Loc(l)
	}
	order, ok, exhausted := searchConstrained(t, cons, locs, budget)
	if !ok {
		return Result{}, exhausted
	}
	return Result{OK: true, Observer: observer.FromLastWriter(t.Comp, order)}, true
}

// OrderExplains reports whether a specific topological sort's
// last-writer semantics reproduce every read value of the trace — a
// constant witness check useful when the executing system can supply
// its own serialization candidate (e.g. a schedule's completion order).
func OrderExplains(t *trace.Trace, order []dag.Node) bool {
	if err := t.Validate(); err != nil || !t.Comp.Dag().IsTopoSort(order) {
		return false
	}
	for l := computation.Loc(0); int(l) < t.Comp.NumLocs(); l++ {
		row := observer.LastWriterForLoc(t.Comp, order, l)
		for u := 0; u < t.Comp.NumNodes(); u++ {
			if !t.Comp.Op(dag.Node(u)).IsReadOf(l) {
				continue
			}
			var v trace.Value
			if row[u] == observer.Bottom {
				v = trace.Undefined
			} else {
				v = t.WriteVal[row[u]]
			}
			if v != t.ReadVal[u] {
				return false
			}
		}
	}
	return true
}

// VerifyLC decides whether the trace is explainable under location
// consistency: each location independently admits a serialization
// matching the observed values. On success the witness observer is
// assembled from the per-location sorts.
//
// When every read's candidate set is a singleton (always the case for
// traces with unique write values), each location is decided by the
// polynomial SerializeLoc reduction; ambiguous reads are resolved by
// backtracking over their candidates, each choice checked
// polynomially.
func VerifyLC(t *trace.Trace) Result {
	if err := t.Validate(); err != nil {
		return Result{}
	}
	cons, ok := buildConstraints(t)
	if !ok {
		return Result{}
	}
	sorts := make([][]dag.Node, t.Comp.NumLocs())
	for l := computation.Loc(0); int(l) < t.Comp.NumLocs(); l++ {
		order, ok := serializeLocChoices(t.Comp, l, cons[l])
		if !ok {
			return Result{}
		}
		sorts[l] = order
	}
	if t.Comp.NumLocs() == 0 {
		return Result{OK: true, Observer: observer.New(t.Comp)}
	}
	return Result{OK: true, Observer: observer.FromPerLocationSorts(t.Comp, sorts)}
}

// serializeLocChoices finds a serialization of location l compatible
// with per-node candidate sets (nil = unconstrained), backtracking over
// nodes that have more than one candidate.
func serializeLocChoices(c *computation.Computation, l computation.Loc, cands [][]dag.Node) ([]dag.Node, bool) {
	var ambiguous []dag.Node
	choice := make(map[dag.Node]dag.Node)
	for u := 0; u < c.NumNodes(); u++ {
		switch len(cands[u]) {
		case 0: // unconstrained
		case 1:
			choice[dag.Node(u)] = cands[u][0]
		default:
			ambiguous = append(ambiguous, dag.Node(u))
		}
	}
	req := func(u dag.Node) (dag.Node, bool) {
		w, ok := choice[u]
		return w, ok
	}
	var rec func(i int) ([]dag.Node, bool)
	rec = func(i int) ([]dag.Node, bool) {
		if i == len(ambiguous) {
			return memmodel.SerializeLoc(c, l, req)
		}
		u := ambiguous[i]
		for _, w := range cands[u] {
			choice[u] = w
			if order, ok := rec(i + 1); ok {
				return order, true
			}
		}
		delete(choice, u)
		return nil, false
	}
	return rec(0)
}

// VerifyModel decides explainability under an arbitrary model by
// enumerating observer functions compatible with the trace (reads are
// pinned to their value-derived candidates; all other entries range
// over the full candidate sets). Exponential in the number of
// unconstrained entries — intended for the dag-consistent models on
// moderate computations. maxTries caps the enumeration (0 = unlimited);
// if the cap is hit without success, the second result is false.
func VerifyModel(m memmodel.Model, t *trace.Trace, maxTries int) (Result, bool) {
	if err := t.Validate(); err != nil {
		return Result{}, true
	}
	c := t.Comp
	cands := observer.Candidates(c)
	cons, ok := buildConstraints(t)
	if !ok {
		return Result{}, true
	}
	// Intersect read rows with trace candidates.
	for l := range cands {
		for u := range cands[l] {
			if cons[l][u] == nil {
				continue
			}
			var narrowed []dag.Node
			for _, v := range cands[l][u] {
				if allowed(cons, computation.Loc(l), dag.Node(u), v) {
					narrowed = append(narrowed, v)
				}
			}
			cands[l][u] = narrowed
		}
	}

	o := observer.New(c)
	n := c.NumNodes()
	total := c.NumLocs() * n
	tried := 0
	exhausted := true
	var found *observer.Observer

	var rec func(slot int) bool
	rec = func(slot int) bool {
		if slot == total {
			tried++
			if m.Contains(c, o) {
				found = o.Clone()
				return true
			}
			if maxTries > 0 && tried >= maxTries {
				exhausted = false
				return true // stop, capped
			}
			return false
		}
		l := computation.Loc(slot / n)
		u := dag.Node(slot % n)
		for _, v := range cands[l][u] {
			o.Set(l, u, v)
			if rec(slot + 1) {
				return true
			}
		}
		return false
	}
	rec(0)
	if found != nil {
		return Result{OK: true, Observer: found}, true
	}
	return Result{}, exhausted
}

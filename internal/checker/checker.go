// Package checker implements post-mortem verification: given an
// executed trace (computation + values), decide whether some observer
// function in a memory model explains it. This is the computation-
// centric analogue of Gibbons & Korach's after-the-fact sequential-
// consistency verification ([GK94], cited in Sections 1 and 7).
//
// For the serialization-based models the checker does not enumerate
// observer functions: it runs the unified pruned backtracking engine
// of internal/search, constrained only at read nodes (whose candidate
// writer sets come from value equality), which scales to traces far
// beyond the exhaustive-enumeration experiments.
package checker

import (
	"context"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
	"repro/internal/search"
	"repro/internal/trace"
)

// SearchOptions tunes the engine behind the serialization checkers
// (workers for parallel root splitting, search-state budget). The zero
// value picks defaults (auto workers, unlimited budget).
type SearchOptions = search.Options

// SearchStats reports the work a verification's searches did.
type SearchStats = search.Stats

// Verdict is the three-valued verification outcome (In / Out /
// Inconclusive with a machine-readable StopReason).
type Verdict = search.Verdict

// VerdictText renders a verification verdict in the spelling the
// verify CLI and the serving layer share: "explainable" for In,
// "VIOLATED" for Out, and the INCONCLUSIVE(reason) form otherwise.
// Keeping the spelling here means a trace checked over HTTP reports
// byte-identically to one checked at the command line.
func VerdictText(v Verdict) string {
	switch {
	case v.In():
		return "explainable"
	case v.Out():
		return "VIOLATED"
	default:
		return v.String()
	}
}

// Result reports a verification outcome with a witness when positive.
type Result struct {
	OK bool
	// Observer is a full observer function explaining the trace, when
	// the checker constructs one (VerifyModel does; the serialization
	// checkers reconstruct it from their witness sorts).
	Observer *observer.Observer
}

// constraints[l][u] is the allowed writer set for node u at location l,
// or nil when unconstrained. allowBottom is tracked via presence of
// observer.Bottom in the slice.
type constraints [][][]dag.Node

func buildConstraints(t *trace.Trace) (constraints, bool) {
	c := t.Comp
	cons := make(constraints, c.NumLocs())
	for l := range cons {
		cons[l] = make([][]dag.Node, c.NumNodes())
	}
	for u := 0; u < c.NumNodes(); u++ {
		op := c.Op(dag.Node(u))
		if op.Kind != computation.Read {
			continue
		}
		cands := t.Candidates(dag.Node(u))
		if len(cands) == 0 {
			return nil, false
		}
		cons[op.Loc][u] = cands
	}
	return cons, true
}

func allowed(cons constraints, l computation.Loc, u, w dag.Node) bool {
	set := cons[l][u]
	if set == nil {
		return true
	}
	for _, x := range set {
		if x == w {
			return true
		}
	}
	return false
}

// searchConstrained looks for a topological sort T of the trace's
// computation such that, for every location l in locs and every node u
// with a constraint, W_T(l, u) lies in the allowed set. Locations in
// locs with no constrained node are dropped from the engine's tracked
// state — their last writer cannot affect admissibility, and a smaller
// state key memoizes far better.
func searchConstrained(ctx context.Context, t *trace.Trace, cons constraints, locs []computation.Loc, opts SearchOptions) search.Result {
	c := t.Comp
	var tracked []computation.Loc
	for _, l := range locs {
		for u := range cons[l] {
			if cons[l][u] != nil {
				tracked = append(tracked, l)
				break
			}
		}
	}
	slot := make([]int, c.NumLocs())
	for l := range slot {
		slot[l] = -1
	}
	for i, l := range tracked {
		slot[l] = i
	}
	spec := search.Spec{
		Dag:      c.Dag(),
		Closure:  c.Closure(),
		NumSlots: len(tracked),
		WriteSlot: func(u dag.Node) int {
			if op := c.Op(u); op.Kind == computation.Write {
				return slot[op.Loc]
			}
			return -1
		},
		Allowed: func(s int, u dag.Node) ([]dag.Node, bool) {
			set := cons[tracked[s]][u]
			return set, set != nil
		},
	}
	return search.RunContext(ctx, spec, opts)
}

// VerifySC decides whether the trace is explainable under sequential
// consistency: some single topological sort's last-writer semantics
// produce exactly the observed read values. On success the witness
// observer is the last-writer observer of the sort. The decision is
// exact but worst-case exponential (the problem is NP-complete [GK94]);
// use VerifySCBudget on large traces.
func VerifySC(t *trace.Trace) Result {
	res, _ := VerifySCBudget(t, 0)
	return res
}

// VerifySCBudget is VerifySC with a cap on explored search states
// (0 = unlimited). The second result reports whether the search was
// exhaustive: if false, the trace may or may not be SC.
func VerifySCBudget(t *trace.Trace, budget int) (Result, bool) {
	res, exhausted, _ := VerifySCOpts(t, SearchOptions{Budget: int64(budget)})
	return res, exhausted
}

// VerifySCOpts is VerifySC with engine options (parallel workers,
// state budget), also reporting aggregate search statistics. The
// per-location serializability precheck (a polynomial-size relaxation
// of SC) shares the options; each constrained location costs at most
// one budget's worth of states, so the total work is bounded by
// (locations + 1) × Budget.
func VerifySCOpts(t *trace.Trace, opts SearchOptions) (Result, bool, SearchStats) {
	res, verdict, stats := VerifySCCtx(context.Background(), t, opts)
	return res, verdict.Decided, stats
}

// VerifySCCtx is VerifySC under a context with a typed verdict:
// cancellation or deadline expiry stops the searches promptly and
// yields an inconclusive verdict (as does exhausting opts.Budget), Out
// means the exhaustive search excluded every explaining serialization,
// and In comes with the witness observer.
func VerifySCCtx(ctx context.Context, t *trace.Trace, opts SearchOptions) (Result, Verdict, SearchStats) {
	var stats SearchStats
	if err := t.Validate(); err != nil {
		return Result{}, search.VerdictOut(), stats
	}
	cons, ok := buildConstraints(t)
	if !ok {
		return Result{}, search.VerdictOut(), stats
	}
	// Necessary condition: every location must be independently
	// serializable. Exact rejections here skip the joint search; a
	// budget-exhausted precheck is inconclusive and falls through, but a
	// context stop aborts the whole verification — later searches would
	// return immediately anyway.
	for l := computation.Loc(0); int(l) < t.Comp.NumLocs(); l++ {
		res := serializeLocChoices(ctx, t.Comp, l, cons[l], opts)
		stats.Add(res.Stats)
		if !res.Found && res.Exhausted {
			return Result{}, search.VerdictOut(), stats
		}
		if stop := res.Stop; stop == search.StopDeadline || stop == search.StopCancel {
			return Result{}, search.VerdictInconclusive(stop), stats
		}
	}
	locs := make([]computation.Loc, t.Comp.NumLocs())
	for l := range locs {
		locs[l] = computation.Loc(l)
	}
	res := searchConstrained(ctx, t, cons, locs, opts)
	stats.Add(res.Stats)
	if !res.Found {
		return Result{}, res.Verdict(), stats
	}
	return Result{OK: true, Observer: observer.FromLastWriter(t.Comp, res.Order)}, search.VerdictIn(), stats
}

// OrderExplains reports whether a specific topological sort's
// last-writer semantics reproduce every read value of the trace — a
// constant witness check useful when the executing system can supply
// its own serialization candidate (e.g. a schedule's completion order).
func OrderExplains(t *trace.Trace, order []dag.Node) bool {
	if err := t.Validate(); err != nil || !t.Comp.Dag().IsTopoSort(order) {
		return false
	}
	for l := computation.Loc(0); int(l) < t.Comp.NumLocs(); l++ {
		row := observer.LastWriterForLoc(t.Comp, order, l)
		for u := 0; u < t.Comp.NumNodes(); u++ {
			if !t.Comp.Op(dag.Node(u)).IsReadOf(l) {
				continue
			}
			var v trace.Value
			if row[u] == observer.Bottom {
				v = trace.Undefined
			} else {
				v = t.WriteVal[row[u]]
			}
			if v != t.ReadVal[u] {
				return false
			}
		}
	}
	return true
}

// VerifyLC decides whether the trace is explainable under location
// consistency: each location independently admits a serialization
// matching the observed values. On success the witness observer is
// assembled from the per-location sorts.
func VerifyLC(t *trace.Trace) Result {
	res, _, _ := VerifyLCOpts(t, SearchOptions{})
	return res
}

// VerifyLCOpts is VerifyLC with engine options, also reporting whether
// every per-location search was exhaustive (relevant only with a
// budget) and aggregate search statistics.
func VerifyLCOpts(t *trace.Trace, opts SearchOptions) (Result, bool, SearchStats) {
	res, verdict, stats := VerifyLCCtx(context.Background(), t, opts)
	return res, verdict.Decided, stats
}

// VerifyLCCtx is VerifyLC under a context with a typed verdict; see
// VerifySCCtx for the verdict semantics.
func VerifyLCCtx(ctx context.Context, t *trace.Trace, opts SearchOptions) (Result, Verdict, SearchStats) {
	var stats SearchStats
	if err := t.Validate(); err != nil {
		return Result{}, search.VerdictOut(), stats
	}
	cons, ok := buildConstraints(t)
	if !ok {
		return Result{}, search.VerdictOut(), stats
	}
	sorts := make([][]dag.Node, t.Comp.NumLocs())
	for l := computation.Loc(0); int(l) < t.Comp.NumLocs(); l++ {
		res := serializeLocChoices(ctx, t.Comp, l, cons[l], opts)
		stats.Add(res.Stats)
		if !res.Found {
			return Result{}, res.Verdict(), stats
		}
		sorts[l] = res.Order
	}
	if t.Comp.NumLocs() == 0 {
		return Result{OK: true, Observer: observer.New(t.Comp)}, search.VerdictIn(), stats
	}
	return Result{OK: true, Observer: observer.FromPerLocationSorts(t.Comp, sorts)}, search.VerdictIn(), stats
}

// serializeLocChoices finds a serialization of location l compatible
// with per-node candidate sets (nil = unconstrained): a single-slot
// engine search whose candidate sets are exactly the per-read choices.
// The engine's static closure filtering resolves the unambiguous reads
// and its backtracking covers the ambiguous ones, replacing the
// choice-enumeration loop the checker used to run around
// memmodel.SerializeLoc.
func serializeLocChoices(ctx context.Context, c *computation.Computation, l computation.Loc, cands [][]dag.Node, opts SearchOptions) search.Result {
	spec := search.Spec{
		Dag:      c.Dag(),
		Closure:  c.Closure(),
		NumSlots: 1,
		WriteSlot: func(u dag.Node) int {
			if c.Op(u).IsWriteTo(l) {
				return 0
			}
			return -1
		},
		Allowed: func(_ int, u dag.Node) ([]dag.Node, bool) {
			return cands[u], cands[u] != nil
		},
	}
	return search.RunContext(ctx, spec, opts)
}

// VerifyModel decides explainability under an arbitrary model by
// enumerating observer functions compatible with the trace (reads are
// pinned to their value-derived candidates; all other entries range
// over the full candidate sets) via search.Assignments. Exponential in
// the number of unconstrained entries — intended for the dag-consistent
// models on moderate computations. maxTries caps the enumeration
// (0 = unlimited); if the cap is hit without success, the second
// result is false.
func VerifyModel(m memmodel.Model, t *trace.Trace, maxTries int) (Result, bool) {
	res, verdict := VerifyModelCtx(context.Background(), m, t, maxTries)
	return res, verdict.Decided
}

// VerifyModelCtx is VerifyModel under a context with a typed verdict:
// ctx is polled between candidate observers, so cancellation or
// deadline expiry stops the enumeration promptly with an inconclusive
// verdict, as does hitting maxTries.
func VerifyModelCtx(ctx context.Context, m memmodel.Model, t *trace.Trace, maxTries int) (Result, Verdict) {
	if err := t.Validate(); err != nil {
		return Result{}, search.VerdictOut()
	}
	c := t.Comp
	cands := observer.Candidates(c)
	cons, ok := buildConstraints(t)
	if !ok {
		return Result{}, search.VerdictOut()
	}
	// Intersect read rows with trace candidates.
	for l := range cands {
		for u := range cands[l] {
			if cons[l][u] == nil {
				continue
			}
			var narrowed []dag.Node
			for _, v := range cands[l][u] {
				if allowed(cons, computation.Loc(l), dag.Node(u), v) {
					narrowed = append(narrowed, v)
				}
			}
			cands[l][u] = narrowed
		}
	}

	o := observer.New(c)
	n := c.NumNodes()
	domains := make([][]dag.Node, 0, c.NumLocs()*n)
	for l := 0; l < c.NumLocs(); l++ {
		domains = append(domains, cands[l]...)
	}
	tried := 0
	stop := search.StopNone
	var found *observer.Observer
	search.Assignments(domains, func(assign []dag.Node) bool {
		if err := ctx.Err(); err != nil {
			stop = search.ContextStopReason(err)
			return false
		}
		for i, v := range assign {
			o.Set(computation.Loc(i/n), dag.Node(i%n), v)
		}
		tried++
		if m.Contains(c, o) {
			found = o.Clone()
			return false
		}
		if maxTries > 0 && tried >= maxTries {
			stop = search.StopBudget
			return false
		}
		return true
	})
	switch {
	case found != nil:
		return Result{OK: true, Observer: found}, search.VerdictIn()
	case stop != search.StopNone:
		return Result{}, search.VerdictInconclusive(stop)
	default:
		return Result{}, search.VerdictOut()
	}
}

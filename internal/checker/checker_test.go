package checker

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
	"repro/internal/paperfig"
	"repro/internal/trace"
)

func TestVerifySCSimpleChain(t *testing.T) {
	c := computation.New(1)
	a := c.AddNode(computation.W(0))
	b := c.AddNode(computation.R(0))
	c.MustAddEdge(a, b)
	o := observer.New(c)
	o.Set(0, b, a)
	tr := trace.FromObserver(c, o)
	res := VerifySC(tr)
	if !res.OK {
		t.Fatal("W->R trace must be SC")
	}
	if err := res.Observer.Validate(c); err != nil {
		t.Fatal(err)
	}
	if !memmodel.SC.Contains(c, res.Observer) {
		t.Fatal("witness observer not in SC")
	}
	// A stale read is not explainable at all (no candidate).
	tr.ReadVal[b] = trace.Undefined
	if VerifySC(tr).OK || VerifyLC(tr).OK {
		t.Fatal("stale read past a write must be rejected")
	}
}

func TestVerifyDekkerTrace(t *testing.T) {
	fx := paperfig.Dekker()
	tr := trace.FromObserver(fx.Comp, fx.Obs)
	if VerifySC(tr).OK {
		t.Fatal("Dekker trace must not verify under SC")
	}
	res := VerifyLC(tr)
	if !res.OK {
		t.Fatal("Dekker trace must verify under LC")
	}
	if !memmodel.LC.Contains(fx.Comp, res.Observer) {
		t.Fatal("LC witness observer not in LC")
	}
	// The witness explains the trace: re-deriving values from it must
	// reproduce every read.
	got := trace.FromObserver(fx.Comp, res.Observer)
	for u := range got.ReadVal {
		if fx.Comp.Op(dag.Node(u)).Kind == computation.Read && got.ReadVal[u] != tr.ReadVal[u] {
			t.Fatalf("witness does not explain read %d", u)
		}
	}
}

func TestVerifyModelFigure4(t *testing.T) {
	fx := paperfig.Figure4()
	tr := trace.FromObserver(fx.Prefix, fx.PrefixObs)
	// The crossing trace is explainable under NN but not under LC.
	res, exhausted := VerifyModel(memmodel.NN, tr, 0)
	if !res.OK || !exhausted {
		t.Fatal("crossing trace must verify under NN")
	}
	if !memmodel.NN.Contains(fx.Prefix, res.Observer) {
		t.Fatal("witness not in NN")
	}
	if VerifyLC(tr).OK {
		t.Fatal("crossing trace must not verify under LC")
	}
	lcRes, exhausted := VerifyModel(memmodel.LC, tr, 0)
	if lcRes.OK || !exhausted {
		t.Fatal("VerifyModel(LC) must agree with VerifyLC")
	}
}

func TestVerifyModelCap(t *testing.T) {
	// Many parallel reads of one of two same-valued writes: large
	// candidate product. A cap of 1 must report non-exhaustion when the
	// first assignment fails.
	c := computation.New(1)
	w1 := c.AddNode(computation.W(0))
	w2 := c.AddNode(computation.W(0))
	for i := 0; i < 4; i++ {
		r := c.AddNode(computation.R(0))
		c.MustAddEdge(w1, r)
		c.MustAddEdge(w2, r)
	}
	tr := trace.New(c)
	tr.WriteVal[w1] = 5
	tr.WriteVal[w2] = 5
	for u := 2; u < 6; u++ {
		tr.ReadVal[u] = 5
	}
	never := memmodel.Func("NEVER", func(*computation.Computation, *observer.Observer) bool { return false })
	res, exhausted := VerifyModel(never, tr, 1)
	if res.OK {
		t.Fatal("NEVER verified")
	}
	if exhausted {
		t.Fatal("cap of 1 must report non-exhaustion")
	}
}

func TestVerifySCBudgetNonExhaustive(t *testing.T) {
	// A wide computation with contradictory cross-location constraints:
	// the search must do real work, so a budget of 1 state cannot be
	// exhaustive.
	c := computation.New(2)
	var writes, reads []dag.Node
	for i := 0; i < 6; i++ {
		writes = append(writes, c.AddNode(computation.W(computation.Loc(i%2))))
	}
	for i := 0; i < 6; i++ {
		r := c.AddNode(computation.R(computation.Loc(i % 2)))
		reads = append(reads, r)
		c.MustAddEdge(writes[i], r)
	}
	tr := trace.New(c).UniqueWrites()
	for i, r := range reads {
		tr.ReadVal[r] = tr.WriteVal[writes[i]]
	}
	res, exhaustive := checkerVerifySCBudget(tr, 1)
	if res.OK {
		return // found instantly; fine
	}
	if exhaustive {
		t.Fatal("budget=1 claimed exhaustive search on a 12-node instance")
	}
	// Unlimited budget decides it.
	if full := VerifySC(tr); !full.OK {
		t.Fatal("consistent trace rejected")
	}
}

// indirection so the test reads naturally.
func checkerVerifySCBudget(tr *trace.Trace, budget int) (Result, bool) {
	return VerifySCBudget(tr, budget)
}

func TestVerifyLCAmbiguousValues(t *testing.T) {
	// Two parallel writes storing the same value, one read seeing it:
	// the read has two candidates and the choice backtracking must
	// still succeed.
	c := computation.New(1)
	w1 := c.AddNode(computation.W(0))
	w2 := c.AddNode(computation.W(0))
	r := c.AddNode(computation.R(0))
	c.MustAddEdge(w1, r)
	c.MustAddEdge(w2, r)
	tr := trace.New(c)
	tr.WriteVal[w1] = 7
	tr.WriteVal[w2] = 7
	tr.ReadVal[r] = 7
	if !VerifyLC(tr).OK {
		t.Fatal("ambiguous but consistent trace rejected")
	}
	// Make it unsatisfiable: the read wants a value neither write has.
	tr.ReadVal[r] = 9
	if VerifyLC(tr).OK {
		t.Fatal("unsatisfiable trace accepted")
	}
}

func TestOrderExplains(t *testing.T) {
	c := computation.New(1)
	w := c.AddNode(computation.W(0))
	r := c.AddNode(computation.R(0))
	c.MustAddEdge(w, r)
	tr := trace.New(c).UniqueWrites()
	tr.ReadVal[r] = tr.WriteVal[w]
	if !OrderExplains(tr, []dag.Node{w, r}) {
		t.Fatal("correct order rejected")
	}
	tr.ReadVal[r] = trace.Undefined
	if OrderExplains(tr, []dag.Node{w, r}) {
		t.Fatal("stale read explained")
	}
	if OrderExplains(tr, []dag.Node{r, w}) {
		t.Fatal("non-topological order accepted")
	}
	bad := trace.New(c)
	bad.WriteVal[w] = trace.Undefined
	if OrderExplains(bad, []dag.Node{w, r}) {
		t.Fatal("invalid trace accepted")
	}
}

func TestVerifyInvalidTrace(t *testing.T) {
	c := computation.New(1)
	c.AddNode(computation.W(0))
	tr := trace.New(c)
	tr.WriteVal[0] = trace.Undefined
	if VerifySC(tr).OK || VerifyLC(tr).OK {
		t.Fatal("invalid trace verified")
	}
	if res, _ := VerifyModel(memmodel.NN, tr, 0); res.OK {
		t.Fatal("invalid trace verified by VerifyModel")
	}
}

func TestVerifyEmptyTrace(t *testing.T) {
	c := computation.New(2)
	tr := trace.New(c)
	if !VerifySC(tr).OK || !VerifyLC(tr).OK {
		t.Fatal("empty trace must verify")
	}
}

// Property: for random computations and random LC observers, the trace
// derived from the observer verifies under LC, and if it verifies under
// SC then the SC witness also explains it. With unique write values the
// checkers must agree with direct model membership of the generating
// observer's trace-compatible completions.
func TestQuickCheckerSoundAndComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(7)
		locs := 1 + rng.Intn(2)
		g := dag.Random(rng, n, 0.3)
		all := computation.AllOps(locs)
		ops := make([]computation.Op, n)
		for i := range ops {
			ops[i] = all[rng.Intn(len(all))]
		}
		c := computation.MustFrom(g, ops, locs)
		order, err := c.Dag().TopoSort()
		if err != nil {
			return false
		}
		// SC-generated trace: must verify under both SC and LC.
		o := observer.FromLastWriter(c, order)
		tr := trace.FromObserver(c, o)
		if !VerifySC(tr).OK || !VerifyLC(tr).OK {
			return false
		}
		// Tamper with one read, if there is one: replace its value with
		// a fresh value no write stores. Must fail everywhere.
		for u := 0; u < n; u++ {
			if c.Op(dag.Node(u)).Kind == computation.Read {
				tr.ReadVal[u] = 1 << 40
				if VerifySC(tr).OK || VerifyLC(tr).OK {
					return false
				}
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: VerifySC agrees with exhaustive enumeration of SC observers
// compatible with the trace (soundness and completeness of the
// constrained search).
func TestQuickVerifySCAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5)
		g := dag.Random(rng, n, 0.3)
		all := computation.AllOps(1)
		ops := make([]computation.Op, n)
		for i := range ops {
			ops[i] = all[rng.Intn(len(all))]
		}
		c := computation.MustFrom(g, ops, 1)
		if observer.Count(c, 200) >= 200 {
			return true
		}
		// Random trace: unique writes, each read gets a random write's
		// value or Undefined.
		tr := trace.New(c).UniqueWrites()
		var writes []dag.Node
		for u := 0; u < n; u++ {
			if c.Op(dag.Node(u)).Kind == computation.Write {
				writes = append(writes, dag.Node(u))
			}
		}
		for u := 0; u < n; u++ {
			if c.Op(dag.Node(u)).Kind != computation.Read {
				continue
			}
			if len(writes) > 0 && rng.Intn(3) > 0 {
				tr.ReadVal[u] = tr.WriteVal[writes[rng.Intn(len(writes))]]
			} else {
				tr.ReadVal[u] = trace.Undefined
			}
		}
		// Brute force: any SC observer explaining the trace?
		brute := false
		observer.Enumerate(c, func(o *observer.Observer) bool {
			if !memmodel.SC.Contains(c, o) {
				return true
			}
			match := true
			for u := 0; u < n; u++ {
				op := c.Op(dag.Node(u))
				if op.Kind != computation.Read {
					continue
				}
				w := o.Get(op.Loc, dag.Node(u))
				var v trace.Value
				if w == observer.Bottom {
					v = trace.Undefined
				} else {
					v = tr.WriteVal[w]
				}
				if v != tr.ReadVal[u] {
					match = false
					break
				}
			}
			if match {
				brute = true
				return false
			}
			return true
		})
		return VerifySC(tr).OK == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

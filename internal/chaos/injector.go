package chaos

import (
	"repro/internal/backer"
	"repro/internal/dag"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Injector binds a plan to one run: it implements backer.Injector,
// fires each event at most once, and records which events fired. The
// plan itself is never mutated, so one plan can drive many runs, each
// through its own Injector.
type Injector struct {
	plan  *Plan
	fired []bool
}

// NewInjector returns a fresh injector for the plan (nil means the
// empty plan).
func NewInjector(p *Plan) *Injector {
	if p == nil {
		p = NewPlan()
	}
	return &Injector{plan: p, fired: make([]bool, len(p.Events))}
}

// Validate checks every event against the schedule and resets the
// fired set, so reusing an Injector across runs starts each run clean.
func (in *Injector) Validate(s *sched.Schedule) error {
	for _, e := range in.plan.Events {
		if err := e.validate(s); err != nil {
			return err
		}
	}
	for i := range in.fired {
		in.fired[i] = false
	}
	return nil
}

// fire marks and reports the first unfired event matching the filter.
func (in *Injector) fire(match func(e Event) bool) (Event, bool) {
	for i, e := range in.plan.Events {
		if !in.fired[i] && match(e) {
			in.fired[i] = true
			return e, true
		}
	}
	return Event{}, false
}

// SkipReconcileAt fires a SkipReconcile event keyed by the crossing
// edge src -> dst.
func (in *Injector) SkipReconcileAt(src, dst dag.Node) bool {
	_, ok := in.fire(func(e Event) bool {
		return e.Kind == SkipReconcile && e.Src == src && e.Dst == dst
	})
	return ok
}

// DelayReconcileAt fires a DelayReconcile event keyed by the crossing
// edge src -> dst.
func (in *Injector) DelayReconcileAt(src, dst dag.Node) bool {
	_, ok := in.fire(func(e Event) bool {
		return e.Kind == DelayReconcile && e.Src == src && e.Dst == dst
	})
	return ok
}

// SkipFlushAt fires a SkipFlush event keyed by the flushing node.
func (in *Injector) SkipFlushAt(dst dag.Node) bool {
	_, ok := in.fire(func(e Event) bool {
		return e.Kind == SkipFlush && e.Dst == dst
	})
	return ok
}

// CrashCacheAt fires a CrashCache event for processor p whose tick has
// been reached: the crash lands before the first node on p starting at
// or after the event's tick.
func (in *Injector) CrashCacheAt(_ dag.Node, p int, start sched.Tick) bool {
	_, ok := in.fire(func(e Event) bool {
		return e.Kind == CrashCache && e.Proc == p && e.Tick <= start
	})
	return ok
}

// CorruptReadAt fires a CorruptRead event keyed by the read node.
func (in *Injector) CorruptReadAt(u dag.Node, v trace.Value) (trace.Value, bool) {
	if _, ok := in.fire(func(e Event) bool {
		return e.Kind == CorruptRead && e.Dst == u
	}); ok {
		return corruptValue(u), true
	}
	return v, false
}

// Fired reports, per plan event, whether it fired during the last run.
func (in *Injector) Fired() []bool {
	return append([]bool(nil), in.fired...)
}

// AllFired reports whether every plan event fired during the last run.
// Unfired events are dead weight a shrink would remove.
func (in *Injector) AllFired() bool {
	for _, f := range in.fired {
		if !f {
			return false
		}
	}
	return true
}

// Run executes the schedule under the plan and returns the BACKER
// result along with the injector (for fired-event inspection).
func Run(s *sched.Schedule, p *Plan) (*backer.Result, *Injector, error) {
	in := NewInjector(p)
	res, err := backer.Run(s, in)
	return res, in, err
}

var _ backer.Injector = (*Injector)(nil)

// Package chaos is a deterministic fault harness for the BACKER
// simulator: every protocol violation is an explicit, serializable
// event in a FaultPlan instead of a coin flip, so any failure the
// harness finds is replayable byte-for-byte.
//
// The package provides, on top of plans:
//
//   - an Injector that drives backer.Run from a plan (each event fires
//     at most once, and the harness records which events fired);
//   - a text codec so plans round-trip through files and CLI flags;
//   - an explorer that systematically enumerates bounded plans for a
//     schedule (single-fault exhaustive, then pair-fault), verifies
//     each run with the post-mortem LC checker, and reuses the
//     governance layer (contexts, budgets, three-valued verdicts) so
//     sweeps are cancellable and inconclusiveness is typed;
//   - a shrinker that delta-debugs a violating (computation, schedule,
//     plan) triple to a locally minimal repro;
//   - an artifact writer that emits the shrunk repro as trace +
//     schedule + plan + DOT and classifies the broken execution
//     against the paper's model lattice.
package chaos

import (
	"fmt"
	"strings"

	"repro/internal/dag"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Kind enumerates the fault kinds a plan can inject.
type Kind uint8

const (
	// SkipReconcile skips the reconcile of Src's processor demanded by
	// the crossing edge Src -> Dst: the backing store never learns
	// Src's processor's dirty values at that point.
	SkipReconcile Kind = iota
	// DelayReconcile performs the reconcile for the crossing edge
	// Src -> Dst late: Dst executes against a stale backing store, and
	// the write-backs land just after it. The source cache believes it
	// reconciled (lines go clean), so the values are in flight only.
	DelayReconcile
	// SkipFlush skips the flush of Dst's processor after its crossing
	// edges: stale cached lines survive the synchronization point.
	SkipFlush
	// CrashCache drops processor Proc's cache, dirty lines included,
	// immediately before the first node on Proc starting at or after
	// Tick executes — modelling cache loss at a chosen time.
	CrashCache
	// CorruptRead replaces the value returned by read node Dst with a
	// deterministic corrupted value no write stores.
	CorruptRead

	numKinds
)

var kindNames = [numKinds]string{
	SkipReconcile:  "skip-reconcile",
	DelayReconcile: "delay-reconcile",
	SkipFlush:      "skip-flush",
	CrashCache:     "crash-cache",
	CorruptRead:    "corrupt-read",
}

// AllKinds lists every fault kind in codec order.
func AllKinds() []Kind {
	return []Kind{SkipReconcile, DelayReconcile, SkipFlush, CrashCache, CorruptRead}
}

// String returns the codec spelling of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind parses the codec spelling of a kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown fault kind %q", s)
}

// Event is one fault, keyed by its site:
//
//   - SkipReconcile, DelayReconcile: the crossing edge Src -> Dst;
//   - SkipFlush, CorruptRead: the node Dst;
//   - CrashCache: the processor Proc and tick Tick.
//
// Unused fields are zero. Events are value types; plans compare and
// hash by event identity.
type Event struct {
	Kind     Kind
	Src, Dst dag.Node
	Proc     int
	Tick     sched.Tick
}

// String renders the event as one codec line (without newline).
func (e Event) String() string {
	switch e.Kind {
	case SkipReconcile, DelayReconcile:
		return fmt.Sprintf("%s %d %d", e.Kind, e.Src, e.Dst)
	case SkipFlush, CorruptRead:
		return fmt.Sprintf("%s %d", e.Kind, e.Dst)
	case CrashCache:
		return fmt.Sprintf("%s %d %d", e.Kind, e.Proc, e.Tick)
	default:
		return e.Kind.String()
	}
}

// validate checks the event against a schedule: nodes and processors
// must exist, edge-keyed events must name real crossing edges, node-
// keyed events must name nodes of the right kind. Plans that cannot
// ever fire are configuration bugs and fail loudly at Run time.
func (e Event) validate(s *sched.Schedule) error {
	n := s.Comp.NumNodes()
	inRange := func(u dag.Node) bool { return u >= 0 && int(u) < n }
	switch e.Kind {
	case SkipReconcile, DelayReconcile:
		if !inRange(e.Src) || !inRange(e.Dst) {
			return fmt.Errorf("chaos: event %q: node out of range [0, %d)", e, n)
		}
		if !s.Comp.Dag().HasEdge(e.Src, e.Dst) {
			return fmt.Errorf("chaos: event %q: no edge %d -> %d in the computation", e, e.Src, e.Dst)
		}
		if s.Proc[e.Src] == s.Proc[e.Dst] {
			return fmt.Errorf("chaos: event %q: edge %d -> %d does not cross processors", e, e.Src, e.Dst)
		}
	case SkipFlush, CorruptRead:
		if !inRange(e.Dst) {
			return fmt.Errorf("chaos: event %q: node out of range [0, %d)", e, n)
		}
	case CrashCache:
		if e.Proc < 0 || e.Proc >= s.P {
			return fmt.Errorf("chaos: event %q: processor out of range [0, %d)", e, s.P)
		}
		if e.Tick < 0 {
			return fmt.Errorf("chaos: event %q: negative tick", e)
		}
	default:
		return fmt.Errorf("chaos: unknown event kind %d", e.Kind)
	}
	return nil
}

// Plan is an explicit, ordered list of fault events: the deterministic
// replacement for probabilistic injection. The zero plan is healthy.
type Plan struct {
	Events []Event
}

// NewPlan builds a plan from events.
func NewPlan(events ...Event) *Plan {
	return &Plan{Events: append([]Event(nil), events...)}
}

// Clone returns a deep copy.
func (p *Plan) Clone() *Plan {
	return NewPlan(p.Events...)
}

// Without returns a copy of the plan with event i removed.
func (p *Plan) Without(i int) *Plan {
	out := &Plan{Events: make([]Event, 0, len(p.Events)-1)}
	out.Events = append(out.Events, p.Events[:i]...)
	out.Events = append(out.Events, p.Events[i+1:]...)
	return out
}

// Len returns the number of events.
func (p *Plan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.Events)
}

// Equal reports event-for-event equality (order matters: plans are
// replayed in order, and the codec preserves order).
func (p *Plan) Equal(q *Plan) bool {
	if p.Len() != q.Len() {
		return false
	}
	for i := range p.Events {
		if p.Events[i] != q.Events[i] {
			return false
		}
	}
	return true
}

// String renders the plan in the codec text format.
func (p *Plan) String() string {
	var b strings.Builder
	if err := Format(&b, p); err != nil {
		panic(err) // strings.Builder never errors
	}
	return b.String()
}

// corruptValue is the deterministic value a CorruptRead event installs
// for read node u: strictly negative, distinct per node, never equal to
// a UniqueWrites value (those are >= 1) and never trace.Undefined.
func corruptValue(u dag.Node) trace.Value {
	return trace.Value(-(int64(u) + 2))
}

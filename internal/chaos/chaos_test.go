package chaos

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/cilk"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/sched"
	"repro/internal/trace"
)

// litmusSchedule builds the stale-read litmus (A: R(x) and C: R(x) on
// p0, B: W(x) on p1, edges A->C and B->C) list-scheduled on 2
// processors: one crossing edge, B -> C, node ids A=0 B=1 C=2.
func litmusSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	named, err := computation.ParseString(
		"locs x\nnode A R(x)\nnode B W(x)\nnode C R(x)\nedge A C\nedge B C\n")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ListSchedule(named.Comp, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Proc[1] == s.Proc[2] {
		t.Fatal("litmus lost its crossing edge; list scheduling changed")
	}
	return s
}

func verifyLC(t *testing.T, tr *trace.Trace) checker.Verdict {
	t.Helper()
	_, v, _ := checker.VerifyLCCtx(context.Background(), tr, checker.SearchOptions{})
	if v.Inconclusive() {
		t.Fatalf("ungoverned LC verification came back inconclusive")
	}
	return v
}

func TestPlanCodecRoundTrip(t *testing.T) {
	p := NewPlan(
		Event{Kind: SkipReconcile, Src: 1, Dst: 2},
		Event{Kind: DelayReconcile, Src: 3, Dst: 7},
		Event{Kind: SkipFlush, Dst: 2},
		Event{Kind: CrashCache, Proc: 1, Tick: 5},
		Event{Kind: CorruptRead, Dst: 4},
	)
	var b bytes.Buffer
	if err := Format(&b, p); err != nil {
		t.Fatal(err)
	}
	q, err := Parse(&b)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nformatted:\n%s", err, p)
	}
	if !p.Equal(q) {
		t.Fatalf("roundtrip changed the plan:\n%s\n->\n%s", p, q)
	}
}

func TestPlanCodecCommentsAndOrder(t *testing.T) {
	p, err := ParseString(`
# a full-line comment
skip-flush 2      # trailing comment
crash-cache 0 3
skip-reconcile 1 2
`)
	if err != nil {
		t.Fatal(err)
	}
	want := NewPlan(
		Event{Kind: SkipFlush, Dst: 2},
		Event{Kind: CrashCache, Proc: 0, Tick: 3},
		Event{Kind: SkipReconcile, Src: 1, Dst: 2},
	)
	if !p.Equal(want) {
		t.Fatalf("parsed plan:\n%s\nwant:\n%s", p, want)
	}
}

func TestPlanCodecErrors(t *testing.T) {
	for _, bad := range []string{
		"frobnicate 1 2",   // unknown kind
		"skip-reconcile 1", // missing arg
		"skip-flush",       // missing arg
		"skip-flush 1 2",   // extra arg
		"corrupt-read x",   // non-numeric node
		"crash-cache -1 0", // negative proc
		"crash-cache 0 -1", // negative tick
		"skip-reconcile 1 2 3",
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) accepted malformed input", bad)
		}
	}
}

func TestRunRejectsUnfireablePlan(t *testing.T) {
	s := litmusSchedule(t)
	for _, p := range []*Plan{
		NewPlan(Event{Kind: SkipReconcile, Src: 0, Dst: 2}), // edge exists, same proc
		NewPlan(Event{Kind: SkipReconcile, Src: 0, Dst: 1}), // no such edge
		NewPlan(Event{Kind: SkipFlush, Dst: 99}),            // node out of range
		NewPlan(Event{Kind: CrashCache, Proc: 5, Tick: 0}),  // proc out of range
	} {
		if _, _, err := Run(s, p); err == nil {
			t.Errorf("Run accepted unfireable plan:\n%s", p)
		}
	}
}

func TestEventsFireAtMostOnce(t *testing.T) {
	s := litmusSchedule(t)
	p := NewPlan(
		Event{Kind: SkipReconcile, Src: 1, Dst: 2},
		Event{Kind: CrashCache, Proc: 0, Tick: 0},
	)
	res, inj, err := Run(s, p)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.AllFired() {
		t.Fatalf("expected every event to fire; fired = %v", inj.Fired())
	}
	if res.Stats.SkippedReconciles != 1 || res.Stats.Crashes != 1 {
		t.Fatalf("stats = %+v, want exactly one skip and one crash", res.Stats)
	}
}

// TestHealthyPlanIsLC pins the baseline: the empty plan reproduces a
// healthy BACKER run, and the litmus trace is location consistent.
func TestHealthyPlanIsLC(t *testing.T) {
	s := litmusSchedule(t)
	res, _, err := Run(s, NewPlan())
	if err != nil {
		t.Fatal(err)
	}
	if !verifyLC(t, res.Trace).In() {
		t.Fatalf("healthy litmus run violates LC: %v", res.Trace)
	}
}

// TestExploreLitmus is the acceptance sweep: depth-1 exploration of the
// stale-read litmus finds a violation for every fault kind that can
// target its crossing edge.
func TestExploreLitmus(t *testing.T) {
	s := litmusSchedule(t)
	rep, err := Explore(context.Background(), s, Options{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Explored != rep.Planned {
		t.Fatalf("explored %d of %d planned", rep.Explored, rep.Planned)
	}
	wantKinds := map[Kind]bool{SkipReconcile: false, DelayReconcile: false, SkipFlush: false, CorruptRead: false}
	for _, v := range rep.Violations {
		if v.Plan.Len() != 1 {
			t.Fatalf("depth-1 sweep produced a %d-event plan", v.Plan.Len())
		}
		e := v.Plan.Events[0]
		if _, ok := wantKinds[e.Kind]; ok {
			wantKinds[e.Kind] = true
		}
		if !v.Verdict.Out() {
			t.Fatalf("violation with verdict %v", v.Verdict)
		}
	}
	for k, found := range wantKinds {
		if !found {
			t.Errorf("no %v violation found; violations:\n%v", k, rep.Violations)
		}
	}
	if len(rep.Inconclusive) != 0 {
		t.Fatalf("%d inconclusive outcomes in an ungoverned sweep", len(rep.Inconclusive))
	}
}

func TestExploreDepth2PlanCount(t *testing.T) {
	s := litmusSchedule(t)
	sites := Sites(s, nil)
	rep, err := Explore(context.Background(), s, Options{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := len(sites) + len(sites)*(len(sites)-1)/2
	if rep.Planned != want || rep.Explored != want {
		t.Fatalf("planned/explored = %d/%d, want %d", rep.Planned, rep.Explored, want)
	}
}

func TestExploreGovernors(t *testing.T) {
	s := litmusSchedule(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Explore(ctx, s, Options{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Explored != 0 || rep.Stop == 0 {
		t.Fatalf("cancelled sweep explored %d plans, stop = %v", rep.Explored, rep.Stop)
	}

	rep, err = Explore(context.Background(), s, Options{Depth: 1, MaxPlans: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Explored != 2 {
		t.Fatalf("MaxPlans=2 sweep explored %d plans", rep.Explored)
	}
}

// TestShrinkLocalMinimality is the shrinker soundness criterion: a
// violating plan padded with irrelevant events shrinks to one that (a)
// still violates LC and (b) is 1-minimal — removing any single
// remaining event makes the violation disappear.
func TestShrinkLocalMinimality(t *testing.T) {
	s := litmusSchedule(t)
	// skip-reconcile on the crossing edge violates; the crash of p1's
	// cache at tick 0 and the corrupt-read... corrupting node 0's read
	// would itself violate, so pad only with events that do not.
	padded := NewPlan(
		Event{Kind: CrashCache, Proc: 1, Tick: 0},
		Event{Kind: SkipReconcile, Src: 1, Dst: 2},
		Event{Kind: CrashCache, Proc: 0, Tick: 0},
	)
	rep, err := Shrink(context.Background(), s, padded, checker.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !verifyLC(t, rep.Result.Trace).Out() {
		t.Fatalf("shrunk repro does not violate LC: %v", rep.Result.Trace)
	}
	if rep.Plan.Len() != 1 {
		t.Fatalf("shrunk plan has %d events, want 1:\n%s", rep.Plan.Len(), rep.Plan)
	}
	// 1-minimality on the shrunk triple.
	for i := range rep.Plan.Events {
		res, _, err := Run(rep.Sched, rep.Plan.Without(i))
		if err != nil {
			t.Fatal(err)
		}
		if verifyLC(t, res.Trace).Out() {
			t.Fatalf("shrunk plan is not 1-minimal: removing event %d still violates", i)
		}
	}
	// The shrunk computation must not be larger than the original.
	if rep.Sched.Comp.NumNodes() > s.Comp.NumNodes() {
		t.Fatalf("shrinking grew the computation")
	}
	// NodeMap maps shrunk ids back into the original id range.
	for nu, ou := range rep.NodeMap {
		if ou < 0 || int(ou) >= s.Comp.NumNodes() {
			t.Fatalf("NodeMap[%d] = %d out of range", nu, ou)
		}
	}
}

// TestShrinkTruncatesSchedule pins the schedule-truncation stage: a
// violation confined to an execution prefix drops the unneeded suffix.
func TestShrinkTruncatesSchedule(t *testing.T) {
	// Litmus plus two trailing no-op nodes after C.
	named, err := computation.ParseString(
		"locs x\nnode A R(x)\nnode B W(x)\nnode C R(x)\nnode D N\nnode E N\n" +
			"edge A C\nedge B C\nedge C D\nedge D E\n")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ListSchedule(named.Comp, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlan(Event{Kind: SkipReconcile, Src: 1, Dst: 2})
	if s.Proc[1] == s.Proc[2] {
		t.Skip("list scheduling no longer crosses the litmus edge")
	}
	rep, err := Shrink(context.Background(), s, p, checker.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Sched.Comp.NumNodes(); got >= named.Comp.NumNodes() {
		t.Fatalf("truncation kept %d of %d nodes", got, named.Comp.NumNodes())
	}
	if !verifyLC(t, rep.Result.Trace).Out() {
		t.Fatal("truncated repro no longer violates LC")
	}
}

func TestShrinkRejectsHealthyPlan(t *testing.T) {
	s := litmusSchedule(t)
	if _, err := Shrink(context.Background(), s, NewPlan(), checker.SearchOptions{}); err == nil {
		t.Fatal("Shrink accepted a non-violating plan")
	}
}

// TestShrinkDeterminism: shrinking the same input twice yields the same
// repro (plans, schedules and traces compare equal).
func TestShrinkDeterminism(t *testing.T) {
	s := litmusSchedule(t)
	p := NewPlan(
		Event{Kind: CrashCache, Proc: 1, Tick: 0},
		Event{Kind: SkipFlush, Dst: 2},
	)
	a, err := Shrink(context.Background(), s, p, checker.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Shrink(context.Background(), s, p, checker.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Plan.Equal(b.Plan) {
		t.Fatalf("shrink is not deterministic:\n%s\nvs\n%s", a.Plan, b.Plan)
	}
	if a.OracleRuns != b.OracleRuns {
		t.Fatalf("oracle run counts differ: %d vs %d", a.OracleRuns, b.OracleRuns)
	}
	if !tracesEqual(a.Result.Trace, b.Result.Trace) {
		t.Fatal("shrunk traces differ")
	}
}

// TestClassifyLitmusViolation classifies the skip-reconcile violation
// against the paper's model lattice: the broken trace must be outside
// both serialization models, and every verdict must be definitive on a
// computation this small.
func TestClassifyLitmusViolation(t *testing.T) {
	s := litmusSchedule(t)
	res, _, err := Run(s, NewPlan(Event{Kind: SkipReconcile, Src: 1, Dst: 2}))
	if err != nil {
		t.Fatal(err)
	}
	class := Classify(context.Background(), res.Trace, checker.SearchOptions{}, 0)
	if len(class) != 6 {
		t.Fatalf("classified against %d models, want 6", len(class))
	}
	byName := map[string]checker.Verdict{}
	for _, mv := range class {
		if mv.Verdict.Inconclusive() {
			t.Fatalf("%s verdict inconclusive on a 3-node trace", mv.Model)
		}
		byName[mv.Model] = mv.Verdict
	}
	if !byName["LC"].Out() {
		t.Fatal("LC did not reject the skip-reconcile trace")
	}
	if !byName["SC"].Out() {
		t.Fatal("SC did not reject the skip-reconcile trace")
	}
}

// TestCilkFibExploration is the second acceptance computation: a real
// divide-and-conquer cilk program whose work-stealing schedule has many
// crossing edges. Single-fault exploration must find skip-reconcile
// violations (a child's result write never reaches the backing store,
// so the parent sums stale ⊥). Skip-flush, by contrast, can only
// preserve stale cached lines — and every fib cell is read exactly once,
// on a cold cache, so the sweep must find NO skip-flush violations here;
// the stale-read litmus (TestExploreLitmus) is the computation that
// exposes that kind.
func TestCilkFibExploration(t *testing.T) {
	prog := fibProgram(7)
	rng := rand.New(rand.NewSource(11))
	s, err := sched.WorkStealing(prog.Computation(), 4, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(context.Background(), s, Options{
		Depth: 1,
		Kinds: []Kind{SkipReconcile, SkipFlush},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := map[Kind]int{}
	for _, v := range rep.Violations {
		found[v.Plan.Events[0].Kind]++
	}
	if found[SkipReconcile] == 0 {
		t.Errorf("no skip-reconcile violation in %d plans over fib(7)", rep.Explored)
	}
	if found[SkipFlush] != 0 {
		t.Errorf("%d skip-flush violations on single-read-per-cell fib; the model changed", found[SkipFlush])
	}

	// Shrink the first violation end to end: it must stay a violation
	// and get strictly smaller.
	first := rep.Violations[0]
	shrunk, err := Shrink(context.Background(), s, first.Plan, checker.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Sched.Comp.NumNodes() >= s.Comp.NumNodes() {
		t.Errorf("fib repro did not shrink: %d nodes", shrunk.Sched.Comp.NumNodes())
	}
	if !verifyLC(t, shrunk.Result.Trace).Out() {
		t.Error("shrunk fib repro no longer violates LC")
	}
}

// fibProgram mirrors the canonical cilk fib example: each task
// allocates cells for its children, spawns them, syncs, and writes the
// sum.
func fibProgram(n int) *cilk.Program {
	return cilk.New(1, func(t *cilk.Thread) {
		var build func(t *cilk.Thread, out computation.Loc, n int)
		build = func(t *cilk.Thread, out computation.Loc, n int) {
			if n < 2 {
				t.Write(out, cilk.Const(trace.Value(n)))
				return
			}
			a, b := t.AllocLoc(), t.AllocLoc()
			t.Spawn(func(c *cilk.Thread) { build(c, a, n-1) })
			t.Spawn(func(c *cilk.Thread) { build(c, b, n-2) })
			t.Sync()
			ra := t.Read(a)
			rb := t.Read(b)
			t.Write(out, func(env *cilk.Env) trace.Value {
				return env.Value(ra) + env.Value(rb)
			})
		}
		build(t, 0, n)
	})
}

// TestSitesDeterministicOrder: the exploration alphabet is a pure
// function of the schedule.
func TestSitesDeterministicOrder(t *testing.T) {
	s := litmusSchedule(t)
	a, b := Sites(s, nil), Sites(s, nil)
	if len(a) != len(b) {
		t.Fatal("site enumeration is not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("site %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// Kind filtering.
	only := Sites(s, []Kind{CrashCache})
	for _, e := range only {
		if e.Kind != CrashCache {
			t.Fatalf("filtered sites contain %v", e)
		}
	}
	if len(only) == 0 {
		t.Fatal("no crash sites enumerated")
	}
}

func TestCorruptValueNeverCollides(t *testing.T) {
	for u := dag.Node(0); u < 100; u++ {
		v := corruptValue(u)
		if v >= 0 || v == trace.Undefined {
			t.Fatalf("corruptValue(%d) = %v collides with legitimate values", u, v)
		}
	}
}

package chaos

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checker"
)

// shrunkLitmusRepro shrinks the litmus skip-reconcile violation into a
// Repro for artifact tests.
func shrunkLitmusRepro(t *testing.T) *Repro {
	t.Helper()
	s := litmusSchedule(t)
	rep, err := Shrink(context.Background(), s,
		NewPlan(Event{Kind: SkipReconcile, Src: 1, Dst: 2}), checker.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestArtifactRoundTrip writes a shrunk repro to disk, loads it back,
// and replays it: the replayed trace must match the recorded one value
// for value, and the replayed verdict must still reject LC.
func TestArtifactRoundTrip(t *testing.T) {
	rep := shrunkLitmusRepro(t)
	class := Classify(context.Background(), rep.Result.Trace, checker.SearchOptions{}, 0)
	dir := t.TempDir()
	if err := WriteArtifact(dir, rep, class); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{PlanFile, ScheduleFile, TraceFile, DotFile, ReportFile} {
		if fi, err := os.Stat(filepath.Join(dir, f)); err != nil || fi.Size() == 0 {
			t.Fatalf("artifact file %s missing or empty (%v)", f, err)
		}
	}

	art, err := LoadArtifact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Plan.Equal(rep.Plan) {
		t.Fatalf("loaded plan differs:\n%s\nvs\n%s", art.Plan, rep.Plan)
	}
	if art.Sched.Comp.NumNodes() != rep.Sched.Comp.NumNodes() {
		t.Fatal("loaded schedule has a different computation")
	}
	res, match, err := art.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !match {
		t.Fatalf("replay diverged from the recorded trace:\n%v\nvs\n%v", res.Trace, art.Trace)
	}
	if !verifyLC(t, res.Trace).Out() {
		t.Fatal("replayed artifact no longer violates LC")
	}
}

// TestArtifactBytesDeterministic: writing the same repro twice produces
// byte-identical files, so artifacts can be diffed.
func TestArtifactBytesDeterministic(t *testing.T) {
	rep := shrunkLitmusRepro(t)
	class := Classify(context.Background(), rep.Result.Trace, checker.SearchOptions{}, 0)
	d1, d2 := t.TempDir(), t.TempDir()
	if err := WriteArtifact(d1, rep, class); err != nil {
		t.Fatal(err)
	}
	if err := WriteArtifact(d2, rep, class); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{PlanFile, ScheduleFile, TraceFile, DotFile, ReportFile} {
		b1, err := os.ReadFile(filepath.Join(d1, f))
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(filepath.Join(d2, f))
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Errorf("%s differs between two writes of the same repro", f)
		}
	}
}

// TestLoadArtifactRejectsMismatch: a trace over a different computation
// than the schedule's is a corrupt bundle.
func TestLoadArtifactRejectsMismatch(t *testing.T) {
	rep := shrunkLitmusRepro(t)
	class := Classify(context.Background(), rep.Result.Trace, checker.SearchOptions{}, 0)
	dir := t.TempDir()
	if err := WriteArtifact(dir, rep, class); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, TraceFile),
		[]byte("locs a b\nnode X W(a)\nnode Y R(b) = ⊥\nedge X Y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArtifact(dir); err == nil {
		t.Fatal("LoadArtifact accepted a trace over the wrong computation")
	}
}

package chaos

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParsePlan drives the fault-plan parser with arbitrary input.
// Parse is an input boundary — `backersim -replay` feeds it files — so
// the contract is: any byte sequence either parses into a plan that
// round-trips through Format unchanged, or returns an error; never a
// panic.
func FuzzParsePlan(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.chaos"))
	for _, p := range seeds {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(string(b))
		}
	}
	f.Add("skip-reconcile 1 2\nskip-flush 2\n")
	f.Add("delay-reconcile 3 7 # trailing comment\n")
	f.Add("crash-cache 0 3\ncorrupt-read 4\n")
	f.Add("# comment only\n\n")
	f.Add("skip-reconcile 1\n")            // bad arity
	f.Add("crash-cache -1 -1\n")           // negative site
	f.Add("corrupt-read 99999999999999\n") // overflow
	f.Add("frobnicate 1 2\n")              // unknown kind
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParseString(input)
		if err != nil {
			return
		}
		out := p.String()
		again, rerr := ParseString(out)
		if rerr != nil {
			t.Fatalf("roundtrip re-parse failed: %v\nformatted:\n%s", rerr, out)
		}
		if !p.Equal(again) {
			t.Fatalf("roundtrip changed the plan:\n%s\n->\n%s", p, again)
		}
	})
}

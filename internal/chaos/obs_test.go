package chaos

import (
	"context"
	"sync"
	"testing"

	"repro/internal/checker"
	"repro/internal/obs"
)

type eventLog struct {
	mu  sync.Mutex
	evs []obs.Event
}

func (l *eventLog) Record(ev obs.Event) {
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

func (l *eventLog) byKind(k obs.Kind) []obs.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []obs.Event
	for _, ev := range l.evs {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// Explore must stream one PlanDone per explored plan, bracketed by a
// RunStart/RunEnd pair, with verdict spellings the report collector
// can count violations from.
func TestExploreEmitsPlanStream(t *testing.T) {
	s := litmusSchedule(t)
	log := &eventLog{}
	rep, err := Explore(context.Background(), s, Options{Depth: 1, Recorder: log})
	if err != nil {
		t.Fatal(err)
	}
	starts, ends := log.byKind(obs.RunStart), log.byKind(obs.RunEnd)
	if len(starts) != 1 || len(ends) != 1 {
		t.Fatalf("%d starts, %d ends", len(starts), len(ends))
	}
	if starts[0].Total != rep.Planned || starts[0].Live == nil {
		t.Fatalf("RunStart %+v, planned %d", starts[0], rep.Planned)
	}
	plans := log.byKind(obs.PlanDone)
	if len(plans) != rep.Explored {
		t.Fatalf("%d PlanDone events for %d explored plans", len(plans), rep.Explored)
	}
	var violated int
	for i, ev := range plans {
		if ev.N != int64(i) {
			t.Fatalf("plan %d has index %d", i, ev.N)
		}
		if ev.Str == "OUT" {
			violated++
		}
	}
	if violated != len(rep.Violations) {
		t.Fatalf("%d OUT events for %d violations", violated, len(rep.Violations))
	}
	if got := starts[0].Live.Done.Load(); got != int64(rep.Explored) {
		t.Fatalf("live Done %d, explored %d", got, rep.Explored)
	}
}

// ShrinkRec must report each accepted shrink iteration and a final
// summary, and leave the repro identical to an unobserved Shrink.
func TestShrinkRecEmitsSteps(t *testing.T) {
	s := litmusSchedule(t)
	padded := NewPlan(
		Event{Kind: CrashCache, Proc: 1, Tick: 0},
		Event{Kind: SkipReconcile, Src: 1, Dst: 2},
		Event{Kind: CrashCache, Proc: 0, Tick: 0},
	)
	log := &eventLog{}
	rep, err := ShrinkRec(context.Background(), s, padded, checker.SearchOptions{}, log)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Shrink(context.Background(), s, padded, checker.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Plan.Equal(plain.Plan) || rep.OracleRuns != plain.OracleRuns {
		t.Fatalf("observed shrink diverged: %v (%d runs) vs %v (%d runs)",
			rep.Plan, rep.OracleRuns, plain.Plan, plain.OracleRuns)
	}

	steps := log.byKind(obs.ShrinkStep)
	if len(steps) == 0 {
		t.Fatal("padded plan shrank without ShrinkStep events")
	}
	for _, ev := range steps {
		if ev.Str != "drop-event" && ev.Str != "truncate" {
			t.Fatalf("unknown shrink stage %q", ev.Str)
		}
		if ev.N <= 0 {
			t.Fatalf("shrink step with no oracle runs: %+v", ev)
		}
	}
	ends := log.byKind(obs.RunEnd)
	if len(ends) != 1 || ends[0].Stats == nil || ends[0].Stats.States != int64(rep.OracleRuns) {
		t.Fatalf("RunEnd %+v, oracle runs %d", ends, rep.OracleRuns)
	}
}

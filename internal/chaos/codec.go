package chaos

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/dag"
	"repro/internal/sched"
)

// This file implements the fault-plan text format, one event per line,
// so plans round-trip through files and CLI flags:
//
//	# LC violation: stale cached copy survives the sync
//	skip-reconcile 1 2     # skip reconcile at the crossing edge 1 -> 2
//	delay-reconcile 1 2    # reconcile lands only after node 2 ran
//	skip-flush 2           # skip the flush before node 2
//	crash-cache 1 3        # drop processor 1's cache at tick 3
//	corrupt-read 2         # read node 2 returns a corrupted value
//
// Nodes are numeric ids of the computation the plan targets; plans are
// meaningful only together with a (computation, schedule) pair, which
// the sched codec serializes. Blank lines and '#' comments (full-line
// or trailing) are ignored. Event order is preserved: Format emits
// events in plan order and Parse keeps file order.

// Format writes the plan in the text format accepted by Parse.
func Format(w io.Writer, p *Plan) error {
	for _, e := range p.Events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// Parse reads a fault plan from r. Like the other codecs it is an
// input boundary: malformed input of any shape returns an error, never
// a panic.
func Parse(r io.Reader) (p *Plan, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			p, err = nil, fmt.Errorf("chaos: invalid plan: %v", rec)
		}
	}()
	p = NewPlan()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		kind, kerr := ParseKind(fields[0])
		if kerr != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, kerr)
		}
		args := fields[1:]
		e := Event{Kind: kind}
		switch kind {
		case SkipReconcile, DelayReconcile:
			if len(args) != 2 {
				return nil, fmt.Errorf("line %d: want `%s SRC DST`", lineNo, kind)
			}
			src, err1 := parseNode(args[0])
			dst, err2 := parseNode(args[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad node id in %q", lineNo, strings.Join(fields, " "))
			}
			e.Src, e.Dst = src, dst
		case SkipFlush, CorruptRead:
			if len(args) != 1 {
				return nil, fmt.Errorf("line %d: want `%s NODE`", lineNo, kind)
			}
			dst, derr := parseNode(args[0])
			if derr != nil {
				return nil, fmt.Errorf("line %d: bad node id %q", lineNo, args[0])
			}
			e.Dst = dst
		case CrashCache:
			if len(args) != 2 {
				return nil, fmt.Errorf("line %d: want `%s PROC TICK`", lineNo, kind)
			}
			proc, err1 := strconv.Atoi(args[0])
			tick, err2 := strconv.ParseInt(args[1], 10, 64)
			if err1 != nil || err2 != nil || proc < 0 || tick < 0 {
				return nil, fmt.Errorf("line %d: bad proc/tick in %q", lineNo, strings.Join(fields, " "))
			}
			e.Proc, e.Tick = proc, sched.Tick(tick)
		}
		p.Events = append(p.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Plan, error) {
	return Parse(strings.NewReader(s))
}

func parseNode(s string) (dag.Node, error) {
	n, err := strconv.ParseInt(s, 10, 32)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("chaos: bad node id %q", s)
	}
	return dag.Node(n), nil
}

package chaos

import (
	"context"
	"fmt"

	"repro/internal/backer"
	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/search"
)

// Sites enumerates every single-fault event applicable to the schedule,
// in deterministic order (execution order; per node: crossing-edge
// events in predecessor order, then the node-keyed events, then the
// crash site at the node's start). kinds filters the result; nil means
// all kinds. The sites are the exploration alphabet: a depth-d sweep
// runs every plan made of up to d of them.
func Sites(s *sched.Schedule, kinds []Kind) []Event {
	want := make([]bool, numKinds)
	if len(kinds) == 0 {
		for k := range want {
			want[k] = true
		}
	}
	for _, k := range kinds {
		if int(k) < len(want) {
			want[k] = true
		}
	}
	var sites []Event
	c := s.Comp
	for _, u := range s.Order {
		crossed := false
		for _, v := range c.Dag().Preds(u) {
			if s.Proc[v] == s.Proc[u] {
				continue
			}
			crossed = true
			if want[SkipReconcile] {
				sites = append(sites, Event{Kind: SkipReconcile, Src: v, Dst: u})
			}
			if want[DelayReconcile] {
				sites = append(sites, Event{Kind: DelayReconcile, Src: v, Dst: u})
			}
		}
		if crossed && want[SkipFlush] {
			sites = append(sites, Event{Kind: SkipFlush, Dst: u})
		}
		if want[CorruptRead] && c.Op(u).Kind == computation.Read {
			sites = append(sites, Event{Kind: CorruptRead, Dst: u})
		}
		if want[CrashCache] {
			sites = append(sites, Event{Kind: CrashCache, Proc: s.Proc[u], Tick: s.Start[u]})
		}
	}
	return sites
}

// Options tunes an exploration sweep.
type Options struct {
	// Depth bounds the number of events per plan: 1 (default) explores
	// every single-fault plan, 2 additionally explores every unordered
	// pair of sites.
	Depth int
	// Kinds restricts the fault kinds explored; nil means all.
	Kinds []Kind
	// MaxPlans caps the number of plans run (0 = unlimited); hitting
	// the cap stops the sweep with Stop = StopBudget.
	MaxPlans int
	// StopAtFirst stops the sweep at the first violation found.
	StopAtFirst bool
	// Search configures the per-plan LC verification (workers, state
	// budget, memo cap); contexts and deadlines flow through Explore's
	// ctx argument.
	Search checker.SearchOptions
	// Recorder receives sweep-level events: a RunStart with live plan
	// gauges, one PlanDone per explored plan (its verdict stream), and a
	// RunEnd summary. Deliberately separate from Search.Recorder — a
	// sweep runs thousands of tiny engine searches, and mirroring each
	// one's full event stream would bury the per-plan signal.
	Recorder obs.Recorder
}

// Outcome is one explored plan together with the LC verdict of the run
// it produced.
type Outcome struct {
	Plan    *Plan
	Verdict checker.Verdict
	Result  *backer.Result
}

// Report summarizes an exploration sweep.
type Report struct {
	Sites    int // single-fault sites enumerated
	Planned  int // plans the sweep would run at this depth
	Explored int // plans actually run
	// Violations holds every plan whose run definitively violated LC.
	Violations []Outcome
	// Inconclusive holds plans whose verification was stopped by a
	// governor before deciding — typed, so sweeps distinguish "did not
	// check" from "checked and passed".
	Inconclusive []Outcome
	// Stop says why the sweep ended early (StopNone: it completed).
	Stop search.StopReason
}

// Explore systematically runs bounded fault plans against the schedule
// and verifies every resulting trace with the post-mortem LC checker.
// The sweep is cancellable: ctx is polled between plans, and a deadline
// or cancellation ends the sweep with a typed Stop reason and partial
// results rather than an error. Run errors (an invalid schedule, an
// internal protocol bug) abort the sweep.
func Explore(ctx context.Context, s *sched.Schedule, opts Options) (*Report, error) {
	if s == nil {
		return nil, fmt.Errorf("chaos: nil schedule")
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: invalid schedule: %w", err)
	}
	depth := opts.Depth
	if depth == 0 {
		depth = 1
	}
	if depth < 1 || depth > 2 {
		return nil, fmt.Errorf("chaos: exploration depth %d not in {1, 2}", depth)
	}
	sites := Sites(s, opts.Kinds)
	rep := &Report{Sites: len(sites), Planned: len(sites)}
	if depth == 2 {
		rep.Planned += len(sites) * (len(sites) - 1) / 2
	}
	rec := opts.Recorder
	var live *obs.Counters
	if rec != nil {
		live = &obs.Counters{}
		obs.Emit(rec, obs.Event{Kind: obs.RunStart, Total: rep.Planned, Live: live})
		defer func() {
			outcome := fmt.Sprintf("%d violations / %d plans", len(rep.Violations), rep.Explored)
			if rep.Stop != search.StopNone {
				outcome += " (stopped: " + rep.Stop.String() + ")"
			}
			obs.Emit(rec, obs.Event{Kind: obs.RunEnd, Str: outcome,
				Stats: &obs.Stats{States: int64(rep.Explored)}})
		}()
	}

	tryPlan := func(p *Plan) (done bool) {
		if err := ctx.Err(); err != nil {
			rep.Stop = search.ContextStopReason(err)
			return true
		}
		if opts.MaxPlans > 0 && rep.Explored >= opts.MaxPlans {
			rep.Stop = search.StopBudget
			return true
		}
		res, _, err := Run(s, p)
		if err != nil {
			panic(err) // sites come from the validated schedule; see Explore's recover
		}
		rep.Explored++
		_, verdict, _ := checker.VerifyLCCtx(ctx, res.Trace, opts.Search)
		if rec != nil {
			live.States.Add(1)
			live.Done.Add(1)
			obs.Emit(rec, obs.Event{Kind: obs.PlanDone,
				N: int64(rep.Explored - 1), Str: verdict.String(), Total: p.Len()})
		}
		switch {
		case verdict.Out():
			rep.Violations = append(rep.Violations, Outcome{Plan: p, Verdict: verdict, Result: res})
			if opts.StopAtFirst {
				return true
			}
		case verdict.Inconclusive():
			rep.Inconclusive = append(rep.Inconclusive, Outcome{Plan: p, Verdict: verdict, Result: res})
		}
		return false
	}

	err := func() (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("chaos: exploration failed: %v", rec)
			}
		}()
		for i, e := range sites {
			if tryPlan(NewPlan(e)) {
				return nil
			}
			if depth == 2 {
				for _, e2 := range sites[i+1:] {
					if tryPlan(NewPlan(e, e2)) {
						return nil
					}
				}
			}
		}
		return nil
	}()
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// crossingEdges returns the schedule's crossing edges (src, dst pairs
// whose endpoints run on different processors), in execution order.
func crossingEdges(s *sched.Schedule) [][2]dag.Node {
	var out [][2]dag.Node
	for _, u := range s.Order {
		for _, v := range s.Comp.Dag().Preds(u) {
			if s.Proc[v] != s.Proc[u] {
				out = append(out, [2]dag.Node{v, u})
			}
		}
	}
	return out
}

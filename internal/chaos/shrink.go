package chaos

import (
	"context"
	"fmt"

	"repro/internal/backer"
	"repro/internal/bitset"
	"repro/internal/checker"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/search"
)

// Repro is a shrunk, replayable reproduction of an LC violation: a
// (computation, schedule, plan) triple — the schedule carries its
// (possibly truncated) computation — plus the violating run.
type Repro struct {
	Sched *sched.Schedule
	Plan  *Plan
	// Result is the run of the shrunk triple; its trace definitively
	// violates LC.
	Result *backer.Result
	// NodeMap maps the shrunk computation's node ids back to the
	// original computation's (identity when nothing was truncated).
	NodeMap []dag.Node
	// OracleRuns counts how many run+verify cycles the shrink spent.
	OracleRuns int
}

// Shrink delta-debugs a violating (schedule, plan) pair to a locally
// minimal repro:
//
//  1. greedily drop plan events while the violation persists, to a
//     fixpoint — afterwards, removing any single remaining event makes
//     the violation disappear;
//  2. truncate the schedule (and the computation with it) to the
//     shortest execution prefix on which the shrunk plan still
//     violates;
//  3. re-run step 1 on the truncated triple, since a shorter
//     execution can make more events redundant.
//
// The oracle is deterministic (backer.Run under a plan injector plus
// the exhaustive LC checker), so shrinking is reproducible. ctx cancels
// the shrink between oracle runs; an inconclusive LC verdict (possible
// only with a state budget in opts) is treated conservatively as "not
// a violation", which keeps shrunk plans sound but may leave them
// larger than minimal. Shrink fails if the input does not violate LC.
func Shrink(ctx context.Context, s *sched.Schedule, p *Plan, opts checker.SearchOptions) (*Repro, error) {
	return ShrinkRec(ctx, s, p, opts, nil)
}

// ShrinkRec is Shrink with observability: rec receives a RunStart
// (Total = the input plan's length), one ShrinkStep per accepted
// shrink iteration (Str names the stage, "drop-event" or "truncate";
// N counts oracle runs so far; Total is the plan length after the
// step), and a RunEnd summarizing the repro. A nil rec is exactly
// Shrink.
func ShrinkRec(ctx context.Context, s *sched.Schedule, p *Plan, opts checker.SearchOptions, rec obs.Recorder) (*Repro, error) {
	if s == nil || p == nil {
		return nil, fmt.Errorf("chaos: Shrink needs a schedule and a plan")
	}
	runs := 0
	step := func(stage string, planLen int) {
		if rec != nil {
			obs.Emit(rec, obs.Event{Kind: obs.ShrinkStep, Str: stage, N: int64(runs), Total: planLen})
		}
	}
	if rec != nil {
		obs.Emit(rec, obs.Event{Kind: obs.RunStart, Total: p.Len()})
	}
	oracle := func(s *sched.Schedule, p *Plan) (bool, *backer.Result, error) {
		if err := ctx.Err(); err != nil {
			return false, nil, fmt.Errorf("chaos: shrink stopped (%s): %w", search.ContextStopReason(err), err)
		}
		res, _, err := Run(s, p)
		if err != nil {
			return false, nil, err
		}
		runs++
		_, verdict, _ := checker.VerifyLCCtx(ctx, res.Trace, opts)
		return verdict.Out(), res, nil
	}

	violates, res, err := oracle(s, p)
	if err != nil {
		return nil, err
	}
	if !violates {
		return nil, fmt.Errorf("chaos: plan does not violate LC on this schedule; nothing to shrink")
	}

	cur, res, err := shrinkEvents(oracle, s, p, res, step)
	if err != nil {
		return nil, err
	}
	ts, tp, tres, nodeMap, err := truncateSchedule(oracle, s, cur, res, step)
	if err != nil {
		return nil, err
	}
	tp, tres, err = shrinkEvents(oracle, ts, tp, tres, step)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		obs.Emit(rec, obs.Event{Kind: obs.RunEnd,
			Str: fmt.Sprintf("shrunk to %d events / %d nodes in %d oracle runs",
				tp.Len(), ts.Comp.NumNodes(), runs),
			Stats: &obs.Stats{States: int64(runs)}})
	}
	return &Repro{Sched: ts, Plan: tp, Result: tres, NodeMap: nodeMap, OracleRuns: runs}, nil
}

type oracleFunc func(*sched.Schedule, *Plan) (bool, *backer.Result, error)

// shrinkEvents greedily removes plan events to a fixpoint, preserving
// the violation. res is the run of (s, p); the returned result is the
// run of the returned plan. step reports each accepted removal.
func shrinkEvents(oracle oracleFunc, s *sched.Schedule, p *Plan, res *backer.Result, step func(string, int)) (*Plan, *backer.Result, error) {
	cur := p.Clone()
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Events); i++ {
			cand := cur.Without(i)
			violates, candRes, err := oracle(s, cand)
			if err != nil {
				return nil, nil, err
			}
			if violates {
				cur, res = cand, candRes
				changed = true
				i--
				step("drop-event", cur.Len())
			}
		}
	}
	return cur, res, nil
}

// truncateSchedule finds the shortest execution prefix of s on which p
// still violates LC, and returns the induced (schedule, plan) with node
// ids remapped, plus the new-to-old node map.
func truncateSchedule(oracle oracleFunc, s *sched.Schedule, p *Plan, res *backer.Result, step func(string, int)) (*sched.Schedule, *Plan, *backer.Result, []dag.Node, error) {
	n := s.Comp.NumNodes()
	// The prefix must contain every node a plan event references, or
	// the event could never fire.
	kmin := 1
	pos := make([]int, n)
	for i, u := range s.Order {
		pos[u] = i
	}
	for _, e := range p.Events {
		switch e.Kind {
		case SkipReconcile, DelayReconcile:
			if pos[e.Src]+2 > kmin {
				kmin = pos[e.Src] + 2 // src and at least its successor
			}
			fallthrough
		case SkipFlush, CorruptRead:
			if pos[e.Dst]+1 > kmin {
				kmin = pos[e.Dst] + 1
			}
		}
	}
	for k := kmin; k <= n; k++ {
		ts, tp, nodeMap, err := truncateAt(s, p, k)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		violates, tres, err := oracle(ts, tp)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if violates {
			if k < n {
				step("truncate", tp.Len())
			}
			return ts, tp, tres, nodeMap, nil
		}
	}
	// k = n is the untruncated triple (modulo id renaming), which
	// violates by precondition; reaching here means the oracle is not
	// deterministic.
	return nil, nil, nil, nil, fmt.Errorf("chaos: truncation lost the violation; non-deterministic oracle?")
}

// truncateAt builds the subschedule induced by the first k nodes of the
// execution order, remapping the computation, schedule arrays, and plan
// events onto fresh contiguous node ids.
func truncateAt(s *sched.Schedule, p *Plan, k int) (*sched.Schedule, *Plan, []dag.Node, error) {
	n := s.Comp.NumNodes()
	keep := bitset.New(n)
	for _, u := range s.Order[:k] {
		keep.Add(int(u))
	}
	// A prefix of the execution order is downward closed: every
	// predecessor executed earlier.
	sub, newToOld := s.Comp.Prefix(keep)
	oldToNew := make([]dag.Node, n)
	for i := range oldToNew {
		oldToNew[i] = dag.None
	}
	for nu, ou := range newToOld {
		oldToNew[ou] = dag.Node(nu)
	}

	ts := &sched.Schedule{
		Comp:   sub,
		P:      s.P,
		Proc:   make([]int, k),
		Start:  make([]sched.Tick, k),
		Finish: make([]sched.Tick, k),
		Order:  make([]dag.Node, 0, k),
		Steals: s.Steals,
	}
	for nu, ou := range newToOld {
		ts.Proc[nu] = s.Proc[ou]
		ts.Start[nu] = s.Start[ou]
		ts.Finish[nu] = s.Finish[ou]
		if ts.Finish[nu] > ts.Makespan {
			ts.Makespan = ts.Finish[nu]
		}
	}
	for _, u := range s.Order[:k] {
		ts.Order = append(ts.Order, oldToNew[u])
	}
	if err := ts.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("chaos: truncated schedule invalid: %w", err)
	}

	tp := p.Clone()
	for i := range tp.Events {
		e := &tp.Events[i]
		switch e.Kind {
		case SkipReconcile, DelayReconcile:
			e.Src, e.Dst = oldToNew[e.Src], oldToNew[e.Dst]
		case SkipFlush, CorruptRead:
			e.Dst = oldToNew[e.Dst]
		}
	}
	return ts, tp, newToOld, nil
}

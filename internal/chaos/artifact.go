package chaos

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/backer"
	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/viz"
)

// Artifact file names inside an artifact directory.
const (
	PlanFile     = "plan.chaos"
	ScheduleFile = "schedule.sched"
	TraceFile    = "trace.trace"
	DotFile      = "computation.dot"
	ReportFile   = "report.txt"
)

// ModelVerdict is one model of the paper's lattice together with the
// post-mortem verdict for the broken trace: does the model still
// explain the execution that LC rejects?
type ModelVerdict struct {
	Model   string
	Verdict checker.Verdict
}

// Classify checks the trace against the model lattice: the
// serialization models SC and LC exactly, and the dag-consistent
// lattice NN, NW, WN, WW by observer enumeration capped at maxTries
// candidates per model (0 = unlimited — exponential, keep repros
// small). The interesting reading is on broken traces: when LC breaks,
// the weaker dag-consistent models say how broken the execution is —
// a skipped flush that merely reorders reads may keep WW while a lost
// write escapes the lattice entirely.
func Classify(ctx context.Context, tr *trace.Trace, opts checker.SearchOptions, maxTries int) []ModelVerdict {
	out := make([]ModelVerdict, 0, 6)
	_, sc, _ := checker.VerifySCCtx(ctx, tr, opts)
	out = append(out, ModelVerdict{Model: "SC", Verdict: sc})
	_, lc, _ := checker.VerifyLCCtx(ctx, tr, opts)
	out = append(out, ModelVerdict{Model: "LC", Verdict: lc})
	for _, m := range []memmodel.Model{memmodel.NN, memmodel.NW, memmodel.WN, memmodel.WW} {
		_, v := checker.VerifyModelCtx(ctx, m, tr, maxTries)
		out = append(out, ModelVerdict{Model: m.Name(), Verdict: v})
	}
	return out
}

// AutoNamed wraps a computation with generated symbol tables (nodes
// n0, n1, ...; locations l0, l1, ...) so anonymous simulator output can
// flow through the text codecs.
func AutoNamed(c *computation.Computation) *computation.Named {
	locs := make([]string, c.NumLocs())
	for l := range locs {
		locs[l] = fmt.Sprintf("l%d", l)
	}
	named := computation.NewNamed(locs...)
	for u := 0; u < c.NumNodes(); u++ {
		named.AddNode(fmt.Sprintf("n%d", u), c.Op(dag.Node(u)))
	}
	for _, e := range c.Dag().Edges() {
		named.Comp.MustAddEdge(e[0], e[1])
	}
	return named
}

// partialObserver lifts a run's read observations into an observer
// function (non-read entries stay ⊥), for rendering dashed "observes"
// edges in DOT output.
func partialObserver(c *computation.Computation, readObserved map[dag.Node]dag.Node) *observer.Observer {
	o := observer.New(c)
	for u, w := range readObserved {
		if w != observer.Bottom {
			o.Set(c.Op(u).Loc, u, w)
		}
	}
	return o
}

// WriteArtifact emits a self-contained postmortem bundle for a shrunk
// repro into dir (created if missing):
//
//	plan.chaos       the fault plan
//	schedule.sched   the schedule with its computation inline
//	trace.trace      the violating value trace
//	computation.dot  Graphviz DOT (processors colored, observations dashed)
//	report.txt       human-readable summary + model-lattice classification
//
// Every file is deterministic for a given repro, so artifacts can be
// diffed and replayed byte-for-byte.
func WriteArtifact(dir string, rep *Repro, class []ModelVerdict) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	named := AutoNamed(rep.Sched.Comp)
	files := []struct {
		name  string
		write func(io.Writer) error
	}{
		{PlanFile, func(w io.Writer) error { return Format(w, rep.Plan) }},
		{ScheduleFile, func(w io.Writer) error { return sched.FormatSchedule(w, named, rep.Sched) }},
		{TraceFile, func(w io.Writer) error {
			nt := &trace.NamedTrace{Named: named, Trace: rep.Result.Trace}
			return nt.Format(w)
		}},
		{DotFile, func(w io.Writer) error {
			return viz.WriteDOT(w, rep.Sched.Comp, viz.Options{
				Schedule:  rep.Sched,
				Observer:  partialObserver(rep.Sched.Comp, rep.Result.ReadObserved),
				NodeNames: named.NodeName,
				Title:     "chaos repro",
			})
		}},
		{ReportFile, func(w io.Writer) error { return writeReport(w, rep, class) }},
	}
	for _, f := range files {
		if err := writeFile(filepath.Join(dir, f.name), f.write); err != nil {
			return fmt.Errorf("chaos: writing %s: %w", f.name, err)
		}
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeReport(w io.Writer, rep *Repro, class []ModelVerdict) error {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos repro: %d-event plan, %d nodes, P=%d\n",
		rep.Plan.Len(), rep.Sched.Comp.NumNodes(), rep.Sched.P)
	b.WriteString("plan:\n")
	for _, e := range rep.Plan.Events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	fmt.Fprintf(&b, "trace: %v\n", rep.Result.Trace)
	st := rep.Result.Stats
	fmt.Fprintf(&b, "stats: %d crossing edges, %d reconciles, %d flushes, %d faults injected\n",
		st.CrossEdges, st.Reconciles, st.Flushes, st.FaultCount())
	fmt.Fprintf(&b, "shrink: %d oracle runs\n", rep.OracleRuns)
	b.WriteString("model lattice classification:\n")
	for _, mv := range class {
		fmt.Fprintf(&b, "  %-3s %s\n", mv.Model+":", mv.Verdict)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Artifact is a postmortem bundle loaded back from disk.
type Artifact struct {
	Named *computation.Named
	Sched *sched.Schedule
	Plan  *Plan
	Trace *trace.Trace
}

// LoadArtifact reads the replayable parts of a bundle (plan, schedule,
// trace) and cross-validates that the trace was produced over the
// schedule's computation.
func LoadArtifact(dir string) (*Artifact, error) {
	sf, err := os.Open(filepath.Join(dir, ScheduleFile))
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	named, s, err := sched.ParseSchedule(sf)
	if err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", ScheduleFile, err)
	}
	pf, err := os.Open(filepath.Join(dir, PlanFile))
	if err != nil {
		return nil, err
	}
	defer pf.Close()
	plan, err := Parse(pf)
	if err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", PlanFile, err)
	}
	tf, err := os.Open(filepath.Join(dir, TraceFile))
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	nt, err := trace.ParseTrace(tf)
	if err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", TraceFile, err)
	}
	if !nt.Trace.Comp.Equal(s.Comp) {
		return nil, fmt.Errorf("chaos: trace and schedule disagree on the computation")
	}
	return &Artifact{Named: named, Sched: s, Plan: plan, Trace: nt.Trace}, nil
}

// Replay runs the artifact's plan over its schedule and reports whether
// the produced trace matches the recorded one value-for-value — the
// determinism check behind `backersim -replay`.
func (a *Artifact) Replay() (*backer.Result, bool, error) {
	res, _, err := Run(a.Sched, a.Plan)
	if err != nil {
		return nil, false, err
	}
	return res, tracesEqual(res.Trace, a.Trace), nil
}

// tracesEqual compares two traces over the same computation value for
// value (write stores and read returns; other nodes carry none).
func tracesEqual(a, b *trace.Trace) bool {
	if a.Comp.NumNodes() != b.Comp.NumNodes() {
		return false
	}
	for u := 0; u < a.Comp.NumNodes(); u++ {
		switch a.Comp.Op(dag.Node(u)).Kind {
		case computation.Write:
			if a.WriteVal[u] != b.WriteVal[u] {
				return false
			}
		case computation.Read:
			if a.ReadVal[u] != b.ReadVal[u] {
				return false
			}
		}
	}
	return true
}

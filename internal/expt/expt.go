// Package expt drives the paper's experiments: the Figure 1 lattice of
// models, the constructible-version fixpoints of Section 6 (Theorem 23
// and the Section 7 open problems about NW* and WN*), and universe-wide
// checks of completeness, monotonicity and constructibility
// (Theorems 19, 21, 22). The cmd tools and the benchmark harness are
// thin wrappers around this package.
package expt

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/computation"
	"repro/internal/enum"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/observer"
)

// Models returns the decidable models: the six of Figure 1 strongest
// first, then the hardware/language models (TSO, RA, CAUSAL) appended
// so existing table positions stay stable. The order matches
// memmodel.ModelNames.
func Models() []memmodel.Model {
	return []memmodel.Model{
		memmodel.SC, memmodel.LC, memmodel.NN,
		memmodel.NW, memmodel.WN, memmodel.WW,
		memmodel.TSO, memmodel.RA, memmodel.CAUSAL,
	}
}

// ModelByName resolves one of the Models by name.
func ModelByName(name string) (memmodel.Model, bool) {
	for _, m := range Models() {
		if m.Name() == name {
			return m, true
		}
	}
	return nil, false
}

// Edge is one claimed relation of the lattice (Figure 1 plus the
// extended edges for TSO/RA/CAUSAL).
type Edge struct {
	A, B string // model names
	// Want is the claimed relation: "⊊" (A strictly stronger than B) or
	// "incomparable".
	Want string
	// MinNodes is the smallest universe (node bound) at which the full
	// relation manifests. Below it, a "⊊" claim degrades to "⊆" (the
	// inclusion must still hold; strictness witnesses are too big) and
	// an incomparability claim is unfalsifiable.
	MinNodes int
	// MinLocs is the smallest number of locations at which the full
	// relation manifests (0 means any). Below it the claim degrades the
	// same way as below MinNodes. Figure 1 edges leave it 0 and keep
	// their historical SC/LC auxiliary-universe carve-out instead.
	MinLocs int
}

// edgeOK classifies r against e's claim over a universe of maxNodes
// nodes and numLocs locations: at or above the edge's witness size the
// classification must match Want exactly; below it, "⊊" degrades to
// the inclusion half (A∖B must still be empty) and an incomparability
// claim is unfalsifiable. This is the one shared judgment both lattice
// runners apply, so the reduced and unreduced reports cannot drift.
func edgeOK(e Edge, r enum.Relation, maxNodes, numLocs int) (got string, ok bool) {
	got = classify(r)
	ok = got == e.Want
	if maxNodes < e.MinNodes || numLocs < e.MinLocs {
		switch e.Want {
		case "⊊":
			ok = r.AOnly == 0
		case "incomparable":
			ok = true
		}
	}
	return got, ok
}

// Figure1Edges returns the relations Figure 1 asserts. The LC/NN
// strictness and the NW/WN incomparability both need computations with
// ≥4 nodes (the Figure 4 crossing and the Figure 2 anomaly).
func Figure1Edges() []Edge {
	return []Edge{
		{A: "SC", B: "LC", Want: "⊊", MinNodes: 2},
		{A: "LC", B: "NN", Want: "⊊", MinNodes: 4},
		{A: "NN", B: "NW", Want: "⊊", MinNodes: 3},
		{A: "NN", B: "WN", Want: "⊊", MinNodes: 3},
		{A: "NW", B: "WW", Want: "⊊", MinNodes: 3},
		{A: "WN", B: "WW", Want: "⊊", MinNodes: 4},
		{A: "NW", B: "WN", Want: "incomparable", MinNodes: 4},
	}
}

// ExtendedEdges returns the machine-checked relations between the
// hardware/language models (TSO, RA, CAUSAL) and the paper's lattice.
// Every MinNodes/MinLocs bound below is the exact witness size found
// by exhaustive sweeps; the two MinNodes: 5 entries are the cautionary
// tale of DESIGN.md §16 — TSO ⊆ CAUSAL and RA ⊆ CAUSAL hold
// exhaustively over every computation with ≤4 nodes and first break at
// 5 (witnesses in testdata/litmus, machine-checked by cmd/lattice), so
// a default -n 4 sweep checks only the surviving inclusion half.
func ExtendedEdges() []Edge {
	return []Edge{
		{A: "SC", B: "TSO", Want: "⊊", MinNodes: 4, MinLocs: 1},
		{A: "SC", B: "RA", Want: "⊊", MinNodes: 4, MinLocs: 2},
		{A: "SC", B: "CAUSAL", Want: "⊊", MinNodes: 4, MinLocs: 1},
		{A: "RA", B: "LC", Want: "⊊", MinNodes: 4, MinLocs: 2},
		{A: "TSO", B: "RA", Want: "incomparable", MinNodes: 4, MinLocs: 2},
		{A: "TSO", B: "CAUSAL", Want: "incomparable", MinNodes: 5, MinLocs: 2},
		{A: "TSO", B: "LC", Want: "incomparable", MinNodes: 4, MinLocs: 2},
		{A: "RA", B: "CAUSAL", Want: "incomparable", MinNodes: 5, MinLocs: 2},
		{A: "CAUSAL", B: "LC", Want: "incomparable", MinNodes: 4, MinLocs: 2},
	}
}

// LatticeEdges returns every claimed relation the lattice check
// verifies: Figure 1 followed by the extended edges.
func LatticeEdges() []Edge {
	return append(Figure1Edges(), ExtendedEdges()...)
}

// EdgeResult is the verdict for one lattice edge over a universe.
type EdgeResult struct {
	Edge     Edge
	Relation enum.Relation
	Got      string // classification of Relation
	OK       bool   // Got matches Edge.Want
}

// LatticeReport is the machine-checked Figure 1.
type LatticeReport struct {
	MaxNodes, NumLocs int
	Pairs             int // total pairs in the universe
	Edges             []EdgeResult
}

// classify names the relation from A's point of view.
func classify(r enum.Relation) string {
	switch {
	case r.Equal():
		return "="
	case r.StrictlyStronger():
		return "⊊"
	case r.Incomparable():
		return "incomparable"
	default:
		return "⊋"
	}
}

// RunLattice machine-checks every Figure 1 edge over the universe of
// all computations with at most maxNodes nodes and numLocs locations.
// The SC/LC edge needs numLocs ≥ 2 to be strict; RunLattice uses
// max(numLocs, 2) for that edge only, matching the paper's remark that
// SC ⊋ LC "as long as there is more than one location".
func RunLattice(maxNodes, numLocs int) LatticeReport {
	return RunLatticeParallel(maxNodes, numLocs, 1)
}

// RunLatticeParallel is RunLattice with each edge's sweep distributed
// over the given number of worker goroutines (<= 0 means GOMAXPROCS).
func RunLatticeParallel(maxNodes, numLocs, workers int) LatticeReport {
	return RunLatticeObs(maxNodes, numLocs, workers, nil)
}

// RunLatticeObs is RunLatticeParallel with observability: rec receives
// one PhaseStart per Figure 1 edge, and each edge's sweep runs under a
// per-edge run label ("A vs B"), so progress lines and trace timelines
// show which relation is currently being checked. A nil rec is exactly
// RunLatticeParallel.
func RunLatticeObs(maxNodes, numLocs, workers int, rec obs.Recorder) LatticeReport {
	rep := LatticeReport{MaxNodes: maxNodes, NumLocs: numLocs}
	rep.Pairs = enum.CountPairsParallel(maxNodes, numLocs, workers)
	for _, e := range LatticeEdges() {
		a, ok := ModelByName(e.A)
		if !ok {
			panic("expt: unknown model " + e.A)
		}
		b, ok := ModelByName(e.B)
		if !ok {
			panic("expt: unknown model " + e.B)
		}
		locs := numLocs
		if e.A == "SC" && e.B == "LC" && locs < 2 {
			locs = 2
		}
		label := e.A + " vs " + e.B
		obs.Emit(rec, obs.Event{Kind: obs.PhaseStart, Str: label})
		r, _ := enum.CompareParallelObs(context.Background(), a, b, maxNodes, locs, workers,
			obs.WithRun(rec, label))
		got, ok := edgeOK(e, r, maxNodes, numLocs)
		rep.Edges = append(rep.Edges, EdgeResult{
			Edge:     e,
			Relation: r,
			Got:      got,
			OK:       ok,
		})
	}
	return rep
}

// sclcAuxMaxNodes caps the auxiliary two-location universe behind the
// SC/LC edge in reduced lattice runs. The edge's strictness already
// manifests at 2 nodes (its MinNodes), the auxiliary universe grows
// ~40× per added node, and SC needs engine searches whenever L ≥ 2 —
// so past this size the auxiliary sweep would dwarf the main one while
// adding no information. The cap only binds above the largest size the
// unreduced path ever ran, so reduced and unreduced reports stay
// identical wherever both exist.
const sclcAuxMaxNodes = 4

// RunLatticeReduced is RunLatticeObs on the symmetry-reduced universe:
// one fused sweep classifies every canonical representative pair into
// its 6-model membership pattern (memmodel.PatternDecider) and every
// Figure 1 edge's relation is derived from the orbit-weighted pattern
// census. Counts and witnesses equal RunLatticeObs's exactly, with one
// carve-out: when maxNodes exceeds sclcAuxMaxNodes the SC/LC edge's
// auxiliary two-location universe is capped there (see the constant).
func RunLatticeReduced(maxNodes, numLocs, workers int, rec obs.Recorder) LatticeReport {
	names := memmodel.ModelNames()
	bit := func(name string) int {
		for i, n := range names {
			if n == name {
				return i
			}
		}
		panic("expt: unknown model " + name)
	}
	edges := LatticeEdges()
	pes := make([]enum.PatternEdge, len(edges))
	for i, e := range edges {
		pes[i] = enum.PatternEdge{A: bit(e.A), B: bit(e.B)}
	}
	obs.Emit(rec, obs.Event{Kind: obs.PhaseStart, Str: "pattern sweep"})
	main, _ := enum.PatternSweepParallel(context.Background(), pes, maxNodes, numLocs, workers,
		obs.WithRun(rec, "lattice-reduced"))
	rep := LatticeReport{MaxNodes: maxNodes, NumLocs: numLocs, Pairs: int(main.Pairs)}
	for i, e := range edges {
		r := main.Edges[i]
		if e.A == "SC" && e.B == "LC" && numLocs < 2 {
			// The SC/LC edge is only strict with ≥2 locations (the paper's
			// remark); rerun just that edge on the auxiliary universe.
			aux := maxNodes
			if aux > sclcAuxMaxNodes {
				aux = sclcAuxMaxNodes
			}
			label := e.A + " vs " + e.B
			obs.Emit(rec, obs.Event{Kind: obs.PhaseStart, Str: label})
			side, _ := enum.PatternSweepParallel(context.Background(),
				[]enum.PatternEdge{{A: bit(e.A), B: bit(e.B)}}, aux, 2, workers,
				obs.WithRun(rec, label))
			r = side.Edges[0]
		}
		got, ok := edgeOK(e, r, maxNodes, numLocs)
		rep.Edges = append(rep.Edges, EdgeResult{Edge: e, Relation: r, Got: got, OK: ok})
	}
	return rep
}

// AllOK reports whether every edge matched Figure 1.
func (r LatticeReport) AllOK() bool {
	for _, e := range r.Edges {
		if !e.OK {
			return false
		}
	}
	return true
}

// String renders the report as the Figure 1 table.
func (r LatticeReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 lattice + TSO/RA/CAUSAL over all computations ≤%d nodes, %d location(s): %d pairs\n",
		r.MaxNodes, r.NumLocs, r.Pairs)
	fmt.Fprintf(&b, "%-6s %-14s %-6s  %-8s %-8s %-8s  %s\n", "A", "relation", "B", "|A∖B|", "|B∖A|", "|A∩B|", "verdict")
	for _, e := range r.Edges {
		verdict := "OK"
		if !e.OK {
			verdict = fmt.Sprintf("MISMATCH (want %s)", e.Edge.Want)
		}
		fmt.Fprintf(&b, "%-6s %-14s %-6s  %-8d %-8d %-8d  %s\n",
			e.Edge.A, e.Got, e.Edge.B, e.Relation.AOnly, e.Relation.BOnly, e.Relation.Both, verdict)
	}
	return b.String()
}

// StarReport is the result of a constructible-version fixpoint
// experiment for one base model.
type StarReport struct {
	Base              string
	MaxNodes, NumLocs int
	// BasePairs and StarPairs count pairs by computation size.
	BasePairs, StarPairs []int
	// LCEqualUpTo is the largest interior size s ≤ MaxNodes-1 such that
	// survivors(≤s) = LC(≤s); -1 if they differ already at size 0.
	LCEqualUpTo int
	// FirstMismatch describes the smallest survivor/LC disagreement in
	// the interior, if any.
	FirstMismatch string
	Star          *memmodel.PairSet
}

// RunStar computes the constructible version of the named base model
// over the full universe and compares it with LC on the interior.
// For base = NN this is the Theorem 23 experiment; for WN and NW it
// probes the open problems of Section 7.
func RunStar(base memmodel.Model, maxNodes, numLocs int) StarReport {
	universe := enum.AllComputations(maxNodes, numLocs)
	ops := computation.AllOps(numLocs)
	star := memmodel.ConstructibleVersion(base, universe, ops)

	rep := StarReport{
		Base:        base.Name(),
		MaxNodes:    maxNodes,
		NumLocs:     numLocs,
		BasePairs:   make([]int, maxNodes+1),
		StarPairs:   make([]int, maxNodes+1),
		LCEqualUpTo: -1,
		Star:        star,
	}

	mismatchSize := maxNodes + 1
	for _, c := range universe {
		size := c.NumNodes()
		observer.Enumerate(c, func(o *observer.Observer) bool {
			inBase := base.Contains(c, o)
			inStar := star.Contains(c, o)
			if inBase {
				rep.BasePairs[size]++
			}
			if inStar {
				rep.StarPairs[size]++
			}
			if size < maxNodes && size < mismatchSize {
				if inStar != memmodel.LC.Contains(c, o) {
					mismatchSize = size
					rep.FirstMismatch = fmt.Sprintf("size %d: %v / %v (star=%v, LC=%v)",
						size, c, o, inStar, !inStar)
				}
			}
			return true
		})
	}
	if mismatchSize > maxNodes {
		rep.LCEqualUpTo = maxNodes - 1
	} else {
		rep.LCEqualUpTo = mismatchSize - 1
	}
	return rep
}

// OK reports whether the experiment confirmed the conjecture the star
// fixpoint probes: survivors = LC everywhere on the interior. CLIs map
// !OK to a nonzero exit so scripted sweeps can't mistake a mismatch
// table for success.
func (r StarReport) OK() bool { return r.FirstMismatch == "" }

// String renders the fixpoint report.
func (r StarReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s* over computations ≤%d nodes, %d location(s)\n", r.Base, r.MaxNodes, r.NumLocs)
	fmt.Fprintf(&b, "%-6s %-12s %-12s\n", "size", "|"+r.Base+"|", "|"+r.Base+"*|")
	for s := range r.BasePairs {
		fmt.Fprintf(&b, "%-6d %-12d %-12d\n", s, r.BasePairs[s], r.StarPairs[s])
	}
	if r.FirstMismatch == "" {
		fmt.Fprintf(&b, "survivors = LC on the interior (sizes ≤ %d): with LC ⊆ %s* ⊆ survivors, this PROVES %s* = LC for those sizes\n",
			r.LCEqualUpTo, r.Base, r.Base)
	} else {
		fmt.Fprintf(&b, "survivors ≠ LC: first mismatch at %s\n", r.FirstMismatch)
		fmt.Fprintf(&b, "(survivors over-approximate %s*, so a mismatch is inconclusive about %s* ≠ LC)\n", r.Base, r.Base)
	}
	return b.String()
}

// PropertyReport summarizes universe-wide property checks for a model.
type PropertyReport struct {
	Model             string
	MaxNodes, NumLocs int
	Computations      int
	Pairs             int // pairs in the model
	Complete          bool
	Monotonic         bool
	// ConstructibleAug reports whether the Theorem 12 criterion held at
	// every pair of the model in the universe: each augmentation (one
	// node larger than the pair, possibly exceeding MaxNodes) admits an
	// extending observer in the model.
	ConstructibleAug bool
	FirstFailure     string
}

// RunProperties machine-checks completeness, monotonicity, and the
// Theorem 12 augmentation criterion for m over the universe.
func RunProperties(m memmodel.Model, maxNodes, numLocs int) PropertyReport {
	rep := PropertyReport{
		Model: m.Name(), MaxNodes: maxNodes, NumLocs: numLocs,
		Complete: true, Monotonic: true, ConstructibleAug: true,
	}
	ops := computation.AllOps(numLocs)
	enum.EachComputationUpTo(maxNodes, numLocs, func(c *computation.Computation) bool {
		rep.Computations++
		if rep.Complete && !memmodel.HasObserver(m, c) {
			rep.Complete = false
			if rep.FirstFailure == "" {
				rep.FirstFailure = fmt.Sprintf("incomplete at %v", c)
			}
		}
		observer.Enumerate(c, func(o *observer.Observer) bool {
			if !m.Contains(c, o) {
				return true
			}
			rep.Pairs++
			if rep.Monotonic && !memmodel.MonotonicAt(m, c, o) {
				rep.Monotonic = false
				if rep.FirstFailure == "" {
					rep.FirstFailure = fmt.Sprintf("non-monotonic at %v / %v", c, o)
				}
			}
			if rep.ConstructibleAug {
				if op, ok := memmodel.ConstructibleAtAug(m, c, o.Clone(), ops); !ok {
					rep.ConstructibleAug = false
					if rep.FirstFailure == "" {
						rep.FirstFailure = fmt.Sprintf("aug by %s fails at %v / %v", op, c, o)
					}
				}
			}
			return true
		})
		return true
	})
	return rep
}

// RunPropertiesReduced is RunProperties on the symmetry-reduced
// universe: every checked property is isomorphism-invariant, so
// checking canonical representatives and scaling the counts by orbit
// yields the identical report — including FirstFailure, since the
// enumeration-first failing computation is necessarily canonical (its
// representative fails too and precedes it).
func RunPropertiesReduced(m memmodel.Model, maxNodes, numLocs int) PropertyReport {
	rep := PropertyReport{
		Model: m.Name(), MaxNodes: maxNodes, NumLocs: numLocs,
		Complete: true, Monotonic: true, ConstructibleAug: true,
	}
	ops := computation.AllOps(numLocs)
	enum.EachComputationReducedUpTo(maxNodes, numLocs, func(c *computation.Computation, orbit int64) bool {
		rep.Computations += int(orbit)
		if rep.Complete && !memmodel.HasObserver(m, c) {
			rep.Complete = false
			if rep.FirstFailure == "" {
				rep.FirstFailure = fmt.Sprintf("incomplete at %v", c)
			}
		}
		observer.Enumerate(c, func(o *observer.Observer) bool {
			if !m.Contains(c, o) {
				return true
			}
			rep.Pairs += int(orbit)
			if rep.Monotonic && !memmodel.MonotonicAt(m, c, o) {
				rep.Monotonic = false
				if rep.FirstFailure == "" {
					rep.FirstFailure = fmt.Sprintf("non-monotonic at %v / %v", c, o)
				}
			}
			if rep.ConstructibleAug {
				if op, ok := memmodel.ConstructibleAtAug(m, c, o.Clone(), ops); !ok {
					rep.ConstructibleAug = false
					if rep.FirstFailure == "" {
						rep.FirstFailure = fmt.Sprintf("aug by %s fails at %v / %v", op, c, o)
					}
				}
			}
			return true
		})
		return true
	})
	return rep
}

// OK reports whether every checked property held over the universe.
// Like StarReport.OK, this is the CLI exit-status hook.
func (r PropertyReport) OK() bool { return r.Complete && r.Monotonic && r.ConstructibleAug }

// String renders the property report as one line per property.
func (r PropertyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s over ≤%d nodes, %d location(s): %d computations, %d pairs\n",
		r.Model, r.MaxNodes, r.NumLocs, r.Computations, r.Pairs)
	fmt.Fprintf(&b, "  complete:            %v\n", r.Complete)
	fmt.Fprintf(&b, "  monotonic:           %v\n", r.Monotonic)
	fmt.Fprintf(&b, "  constructible (aug): %v\n", r.ConstructibleAug)
	if r.FirstFailure != "" {
		fmt.Fprintf(&b, "  first failure:       %s\n", r.FirstFailure)
	}
	return b.String()
}

// Trap is a witness of non-constructibility: a model pair that cannot
// be extended across the augmentation by Op. Revealing the pair's
// computation and then Op is an adversary strategy (Section 3) that
// defeats every online algorithm for the model, since the algorithm
// may end up having produced exactly this observer.
type Trap struct {
	Pair memmodel.Pair
	Op   computation.Op
}

// FindTrap searches the universe for the smallest non-constructibility
// witness of the model, or reports that none exists up to the bound
// (the model passed the Theorem 12 criterion everywhere). For NN it
// rediscovers Figure 4 automatically.
func FindTrap(m memmodel.Model, maxNodes, numLocs int) (Trap, bool) {
	ops := computation.AllOps(numLocs)
	var trap Trap
	found := false
	for n := 0; n <= maxNodes && !found; n++ {
		enum.EachComputation(n, numLocs, func(c *computation.Computation) bool {
			observer.Enumerate(c, func(o *observer.Observer) bool {
				if !m.Contains(c, o) {
					return true
				}
				if op, ok := memmodel.ConstructibleAtAug(m, c, o.Clone(), ops); !ok {
					trap = Trap{Pair: memmodel.Pair{C: c, O: o.Clone()}, Op: op}
					found = true
					return false
				}
				return true
			})
			return !found
		})
	}
	return trap, found
}

// MembershipCensus counts, for every model, the pairs it contains in
// the universe, as a quick overview table.
func MembershipCensus(maxNodes, numLocs int) string {
	return MembershipCensusParallel(maxNodes, numLocs, 1)
}

// MembershipCensusParallel is MembershipCensus with the sweep sharded
// over workers (<= 0 means GOMAXPROCS). Counts are order-independent,
// so the table is identical for every worker count.
func MembershipCensusParallel(maxNodes, numLocs, workers int) string {
	models := Models()
	counts, total := enum.CensusParallel(models, maxNodes, numLocs, workers)
	return censusTable(models, counts, total, maxNodes, numLocs)
}

// MembershipCensusReducedParallel is MembershipCensusParallel deciding
// only canonical representatives and weighting each by its orbit size;
// the rendered table is identical to the unreduced one.
func MembershipCensusReducedParallel(maxNodes, numLocs, workers int) string {
	models := Models()
	counts, total := enum.CensusReducedParallel(models, maxNodes, numLocs, workers)
	return censusTable(models, counts, total, maxNodes, numLocs)
}

// MembershipCensusReducedObs is the reduced census as an observable,
// cancellable sweep: one fused pattern pass over canonical
// representatives (the per-model counts fall out of the orbit-weighted
// pattern census), reporting progress and symmetry gauges to rec under
// the run label "census". The table equals the unreduced one; err is
// ctx's error when the sweep was cut short (the partial table must
// then be discarded).
func MembershipCensusReducedObs(ctx context.Context, maxNodes, numLocs, workers int, rec obs.Recorder) (string, error) {
	models := memmodel.PatternModels()
	sweep, err := enum.PatternSweepParallel(ctx, nil, maxNodes, numLocs, workers, obs.WithRun(rec, "census"))
	if err != nil {
		return "", err
	}
	counts := make([]int, len(models))
	for p, n := range sweep.Counts {
		for i := range models {
			if p&(1<<uint(i)) != 0 {
				counts[i] += int(n)
			}
		}
	}
	return censusTable(models, counts, int(sweep.Pairs), maxNodes, numLocs), nil
}

func censusTable(models []memmodel.Model, counts []int, total, maxNodes, numLocs int) string {
	type row struct {
		name  string
		count int
	}
	rows := make([]row, len(models))
	for i, m := range models {
		rows[i] = row{m.Name(), counts[i]}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count < rows[j].count })
	var b strings.Builder
	fmt.Fprintf(&b, "membership census over ≤%d nodes, %d location(s): %d pairs total\n", maxNodes, numLocs, total)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-4s %8d\n", r.name, r.count)
	}
	return b.String()
}

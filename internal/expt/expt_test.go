package expt

import (
	"strings"
	"testing"

	"repro/internal/computation"
	"repro/internal/enum"
	"repro/internal/memmodel"
	"repro/internal/observer"
)

func TestModelByName(t *testing.T) {
	for _, name := range []string{"SC", "LC", "NN", "NW", "WN", "WW"} {
		m, ok := ModelByName(name)
		if !ok || m.Name() != name {
			t.Fatalf("ModelByName(%q) = %v, %v", name, m, ok)
		}
	}
	if _, ok := ModelByName("XX"); ok {
		t.Fatal("unknown name resolved")
	}
}

// E1 (Figure 1): at 3 nodes every inclusion holds; strictness of the
// size-4 edges is deferred to their MinNodes (checked in the full test
// below and in the benches).
func TestLatticeSmall(t *testing.T) {
	rep := RunLattice(3, 1)
	if !rep.AllOK() {
		t.Fatalf("lattice mismatch:\n%s", rep)
	}
	if rep.Pairs == 0 {
		t.Fatal("empty universe")
	}
	s := rep.String()
	if !strings.Contains(s, "SC") || !strings.Contains(s, "verdict") {
		t.Fatalf("report rendering: %s", s)
	}
}

// E1 full: all Figure 1 edges, including incomparability, at 4 nodes.
func TestLatticeFull(t *testing.T) {
	if testing.Short() {
		t.Skip("4-node lattice sweep skipped in -short mode")
	}
	rep := RunLattice(4, 1)
	if !rep.AllOK() {
		t.Fatalf("Figure 1 mismatch:\n%s", rep)
	}
}

// E1 at two locations: the lattice inclusions also hold when locations
// interact (smaller node bound, bigger op alphabet).
func TestLatticeTwoLocations(t *testing.T) {
	if testing.Short() {
		t.Skip("two-location sweep skipped in -short mode")
	}
	rep := RunLattice(3, 2)
	if !rep.AllOK() {
		t.Fatalf("two-location lattice mismatch:\n%s", rep)
	}
	// SC ⊊ LC must be strict here without the locs bump.
	for _, e := range rep.Edges {
		if e.Edge.A == "SC" && e.Edge.B == "LC" && e.Got != "⊊" {
			t.Fatalf("SC vs LC at 2 locations: %s", e.Got)
		}
	}
}

// E7 (Theorem 23): NN* = LC proved on the interior of the 4-node
// universe.
func TestRunStarNN(t *testing.T) {
	if testing.Short() {
		t.Skip("fixpoint sweep skipped in -short mode")
	}
	rep := RunStar(memmodel.NN, 4, 1)
	if rep.FirstMismatch != "" {
		t.Fatalf("NN* ≠ LC: %s", rep.FirstMismatch)
	}
	if rep.LCEqualUpTo != 3 {
		t.Fatalf("LCEqualUpTo = %d, want 3", rep.LCEqualUpTo)
	}
	// Pruning is visible at size 4? No: size-4 pairs are boundary and
	// never pruned, so base and star agree there. They must agree at
	// sizes ≤ 3 too (NN = LC there). The report still proves the
	// interior equality, which is the theorem's content.
	s := rep.String()
	if !strings.Contains(s, "PROVES") {
		t.Fatalf("report: %s", s)
	}
}

// E5 (Theorem 19): SC and LC are complete, monotonic and constructible
// on the universe.
func TestRunPropertiesSCLC(t *testing.T) {
	for _, m := range []memmodel.Model{memmodel.SC, memmodel.LC} {
		rep := RunProperties(m, 3, 1)
		if !rep.Complete || !rep.Monotonic || !rep.ConstructibleAug {
			t.Errorf("%s properties:\n%s", m.Name(), rep)
		}
	}
}

// E4 complement: NN is complete and monotonic but NOT constructible.
func TestRunPropertiesNN(t *testing.T) {
	if testing.Short() {
		t.Skip("4-node property sweep skipped in -short mode")
	}
	rep := RunProperties(memmodel.NN, 4, 1)
	if !rep.Complete || !rep.Monotonic {
		t.Errorf("NN must be complete and monotonic:\n%s", rep)
	}
	if rep.ConstructibleAug {
		t.Errorf("NN must fail the augmentation criterion:\n%s", rep)
	}
	if !strings.Contains(rep.FirstFailure, "aug") {
		t.Errorf("failure should be an augmentation failure: %s", rep.FirstFailure)
	}
}

// E7b (Section 7 open problems): the WN*/NW* fixpoint probes. The
// amnesiac pair W→N survives WN pruning at every universe size (its
// presence in WN* is proved in internal/memmodel/amnesiac_test.go,
// giving LC ⊊ WN*); the NW probe stays inconclusive, as documented in
// EXPERIMENTS.md.
func TestRunStarOpenProblems(t *testing.T) {
	if testing.Short() {
		t.Skip("fixpoint sweeps skipped in -short mode")
	}
	wn := RunStar(memmodel.WN, 4, 1)
	if wn.FirstMismatch == "" {
		t.Fatal("WN survivors collapsing to LC would contradict LC ⊊ WN*")
	}
	// The witness of LC ⊊ WN*: W(0) → N with the amnesiac observer.
	c := enumFind(t, "comp(locs=1; 0:W(0) 1:N; 0->1)")
	o := amnesiacObserver(c)
	if !wn.Star.Contains(c, o) {
		t.Fatal("amnesiac pair pruned from the WN fixpoint")
	}
	if memmodel.LC.Contains(c, o) {
		t.Fatal("amnesiac pair must be outside LC")
	}

	nw := RunStar(memmodel.NW, 4, 1)
	// NW's survivors also exceed LC at this size, but survivors only
	// over-approximate NW*, so no conclusion is drawn — just record the
	// shape is as documented.
	if nw.FirstMismatch == "" {
		t.Log("NW survivors equal LC on the interior: NW* = LC for these sizes")
	}
}

func enumFind(t *testing.T, key string) *computation.Computation {
	t.Helper()
	var found *computation.Computation
	enum.EachComputationUpTo(2, 1, func(c *computation.Computation) bool {
		if c.String() == key {
			found = c
			return false
		}
		return true
	})
	if found == nil {
		t.Fatalf("computation %q not in universe", key)
	}
	return found
}

func amnesiacObserver(c *computation.Computation) *observer.Observer {
	return observer.New(c)
}

// FindTrap rediscovers Figure 4: the smallest NN non-constructibility
// witness has 4 nodes and is exactly the crossing pattern, and the
// constructible models have no trap at all.
func TestFindTrap(t *testing.T) {
	if testing.Short() {
		t.Skip("trap search sweeps the 4-node universe")
	}
	trap, found := FindTrap(memmodel.NN, 4, 1)
	if !found {
		t.Fatal("no NN trap found up to 4 nodes")
	}
	if trap.Pair.C.NumNodes() != 4 {
		t.Fatalf("smallest NN trap has %d nodes, want 4: %v", trap.Pair.C.NumNodes(), trap.Pair.C)
	}
	if trap.Op.Kind == computation.Write {
		t.Fatalf("trap op should be a non-write, got %s", trap.Op)
	}
	// The discovered pair is NN \ LC, like Figure 4.
	if memmodel.LC.Contains(trap.Pair.C, trap.Pair.O) {
		t.Fatal("trap pair unexpectedly in LC")
	}
	for _, m := range []memmodel.Model{memmodel.SC, memmodel.LC, memmodel.WW} {
		if _, found := FindTrap(m, 3, 1); found {
			t.Fatalf("%s must have no trap (it is constructible)", m.Name())
		}
	}
}

func TestMembershipCensus(t *testing.T) {
	s := MembershipCensus(2, 1)
	if !strings.Contains(s, "SC") || !strings.Contains(s, "WW") {
		t.Fatalf("census: %s", s)
	}
}

package expt

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/enum"
	"repro/internal/memmodel"
	"repro/internal/observer"
)

// Section-2/3 properties of the hardware/language models, pinned at
// the sizes the exploration sweeps established them. Two findings are
// worth the pin on their own:
//
//   - TSO is NOT monotonic (Definition 5): store forwarding lets a
//     node read a program-order-earlier write out of its own buffer,
//     so ADDING precedence can admit observations that are impossible
//     without it — relaxing the computation then breaks membership.
//     The smallest witnesses have 4 nodes; at ≤3 nodes TSO is
//     monotonic, which is why the aug-criterion sweep alone would
//     mislead (Theorem 12 assumes monotonicity).
//   - Despite that, TSO passes the Theorem-10 FULL constructibility
//     criterion everywhere at ≤3 nodes, and RA/CAUSAL are monotonic
//     and pass the Theorem-12 criterion — none of the three has an
//     NN-style trap in the swept universe.

// TestNewModelProperties: completeness, monotonicity and the
// augmentation criterion over the exhaustive ≤3-node, 2-location
// universe — all three hold for all three models there.
func TestNewModelProperties(t *testing.T) {
	for _, m := range []memmodel.Model{memmodel.TSO, memmodel.RA, memmodel.CAUSAL} {
		rep := RunProperties(m, 3, 2)
		if !rep.OK() {
			t.Errorf("%s: properties fail at n≤3 locs=2: %+v", m.Name(), rep)
		}
	}
}

// TestNewModelNoTraps: the Theorem-12 adversary finds no
// non-constructibility trap for any of the new models at ≤3 nodes,
// 2 locations (NN's Figure-4 trap shows up at 4 nodes in the same
// sweep, so the probe itself is known-sharp).
func TestNewModelNoTraps(t *testing.T) {
	for _, m := range []memmodel.Model{memmodel.TSO, memmodel.RA, memmodel.CAUSAL} {
		if trap, found := FindTrap(m, 3, 2); found {
			t.Errorf("%s: unexpected trap %v / %v on %s", m.Name(), trap.Pair.C, trap.Pair.O, trap.Op)
		}
	}
	if _, found := FindTrap(memmodel.NN, 4, 1); !found {
		t.Error("probe lost its sharpness: NN's Figure-4 trap not found at n=4")
	}
}

const tsoMonotonicityWitness = `locs x y
node W W(x)
node R R(x)
node F N
node Wy W(y)
edge W R
observe R x W
observe F y Wy
`

const tsoMonotonicityRelaxed = `locs x y
node W W(x)
node R R(x)
node F N
node Wy W(y)
observe R x W
observe F y Wy
`

// TestTSONonMonotonic pins the 4-node store-forwarding witness: with
// W ≺ R the read can forward x=W from its own buffer while F's ⊥ view
// of x forces W's commit after F — consistent. Relaxing away W ≺ R
// makes the same observation a memory read (W commits before R), and
// the ⊥/fence constraints close a cycle: the relaxation leaves TSO.
func TestTSONonMonotonic(t *testing.T) {
	named, o, err := observer.ParsePairString(tsoMonotonicityWitness)
	if err != nil {
		t.Fatal(err)
	}
	if !memmodel.TSO.Contains(named.Comp, o) {
		t.Fatal("witness pair not in TSO")
	}
	if memmodel.MonotonicAt(memmodel.TSO, named.Comp, o) {
		t.Error("TSO monotonic at the forwarding witness; expected a failing relaxation")
	}
	relaxed, o2, err := observer.ParsePairString(tsoMonotonicityRelaxed)
	if err != nil {
		t.Fatal(err)
	}
	if memmodel.TSO.Contains(relaxed.Comp, o2) {
		t.Error("edgeless relaxation still in TSO; forwarding witness lost")
	}
	// RA and CAUSAL stay monotonic at this pair (their hb-based
	// formulations only lose constraints under relaxation).
	for _, m := range []memmodel.Model{memmodel.RA, memmodel.CAUSAL} {
		if !memmodel.MonotonicAt(m, named.Comp, o) {
			t.Errorf("%s non-monotonic at the TSO witness pair", m.Name())
		}
	}
}

// TestTSOFullConstructibleSmall: because TSO is non-monotonic, the aug
// criterion is not equivalent to constructibility; the Theorem-10
// criterion (every one-node extension, every predecessor set) is. It
// holds everywhere at ≤3 nodes, 2 locations.
func TestTSOFullConstructibleSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive Theorem-10 sweep")
	}
	ops := computation.AllOps(2)
	checked := 0
	fail := ""
	enum.EachComputationUpTo(3, 2, func(c *computation.Computation) bool {
		observer.Enumerate(c, func(o *observer.Observer) bool {
			if !memmodel.TSO.Contains(c, o) {
				return true
			}
			checked++
			if ext, ok := memmodel.ConstructibleAtFull(memmodel.TSO, c, o.Clone(), ops); !ok {
				fail = c.String() + " / " + o.String() + " stuck at " + ext.String()
				return false
			}
			return true
		})
		return fail == ""
	})
	if fail != "" {
		t.Fatalf("Theorem-10 criterion fails: %s", fail)
	}
	if checked == 0 {
		t.Fatal("sweep visited no TSO pairs")
	}
}

// TestStarTSOSmall: the Δ* fixpoint for TSO at ≤3 nodes — the
// constructible-version survivors collapse to LC on the interior,
// exactly as they do for the paper's NN (Theorem 23). With LC ⊆ TSO*
// ⊆ survivors this proves TSO* = LC at those sizes.
func TestStarTSOSmall(t *testing.T) {
	rep := RunStar(memmodel.TSO, 3, 1)
	if !rep.OK() {
		t.Fatalf("TSO* survivors diverge from LC: %s", rep)
	}
	if rep.LCEqualUpTo != 2 {
		t.Errorf("LCEqualUpTo = %d, want 2", rep.LCEqualUpTo)
	}
}

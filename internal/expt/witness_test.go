package expt

import (
	"strings"
	"testing"
)

// TestWitnessClaimsHold re-decides every committed witness fixture.
func TestWitnessClaimsHold(t *testing.T) {
	rep, err := CheckWitnesses("../../testdata/litmus")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(WitnessClaims()) {
		t.Fatalf("checked %d claims, table has %d", len(rep.Results), len(WitnessClaims()))
	}
	for _, res := range rep.Results {
		if !res.OK {
			t.Errorf("%s (%s): %s", res.Claim.Edge, res.Claim.File, res.Detail)
		}
	}
}

// TestWitnessClaimsCoverExtendedEdges: every extended edge keeps its
// separating fixture(s) — the strict half of a "⊊" claim needs a
// B ∖ A member, an incomparability needs both directions. Dropping a
// claim from the table can't silently un-witness an edge.
func TestWitnessClaimsCoverExtendedEdges(t *testing.T) {
	have := make(map[string]bool) // "In∖Out" directions witnessed
	for _, c := range WitnessClaims() {
		have[c.In+"∖"+c.Out] = true
	}
	for _, e := range ExtendedEdges() {
		var need []string
		switch e.Want {
		case "⊊": // A ⊊ B: some pair in B but not A
			need = []string{e.B + "∖" + e.A}
		case "incomparable":
			need = []string{e.A + "∖" + e.B, e.B + "∖" + e.A}
		default:
			t.Fatalf("edge %s %s %s: unhandled claim kind", e.A, e.Want, e.B)
		}
		for _, dir := range need {
			if !have[dir] {
				parts := strings.SplitN(dir, "∖", 2)
				t.Errorf("edge %s %s %s: no witness fixture for %s ∖ %s",
					e.A, e.Want, e.B, parts[0], parts[1])
			}
		}
	}
}

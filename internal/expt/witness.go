package expt

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/observer"
)

// This file machine-checks the strictness side of the enlarged
// lattice. The exhaustive sweeps prove inclusions up to a size bound;
// the claims whose separating pairs are LARGER than the default bound
// (TSO ∖ CAUSAL and RA ∖ CAUSAL first appear at 5 nodes) would
// otherwise rest on comments. Each WitnessClaim pins one direction of
// one edge to a fixture committed under testdata/litmus: the pair must
// be IN one model and OUT of the other, re-decided from the fixture
// bytes on every lattice run — so a decision-procedure regression, a
// stale fixture, or an edit to the claimed lattice all fail loudly.

// WitnessClaim is one committed separation: the pair in File is
// claimed to be a member of model In and a non-member of model Out,
// witnessing Edge (either the strict half of "⊊" or one direction of
// an incomparability).
type WitnessClaim struct {
	File    string // fixture basename, e.g. "sb.ccm"
	In, Out string // model names
	Edge    string // the lattice claim this witnesses, for the report
}

// WitnessClaims returns the committed witnesses for every extended
// edge: one claim per "⊊" (the inclusion half is swept exhaustively),
// two per incomparability. File witnesses are the classic litmus
// shapes where one exists (SB separates SC from TSO, IRIW separates
// SC and TSO from RA) and machine-extracted minimal pairs elsewhere.
func WitnessClaims() []WitnessClaim {
	return []WitnessClaim{
		{File: "sb.ccm", In: "TSO", Out: "SC", Edge: "SC ⊊ TSO"},
		{File: "iriw.ccm", In: "RA", Out: "SC", Edge: "SC ⊊ RA"},
		{File: "coww.ccm", In: "CAUSAL", Out: "SC", Edge: "SC ⊊ CAUSAL"},
		{File: "lb.ccm", In: "LC", Out: "RA", Edge: "RA ⊊ LC"},
		{File: "tso_not_ra.ccm", In: "TSO", Out: "RA", Edge: "TSO ∖ RA ≠ ∅"},
		{File: "iriw.ccm", In: "RA", Out: "TSO", Edge: "RA ∖ TSO ≠ ∅"},
		{File: "tso_not_causal.ccm", In: "TSO", Out: "CAUSAL", Edge: "TSO ∖ CAUSAL ≠ ∅ (n=5)"},
		{File: "coww.ccm", In: "CAUSAL", Out: "TSO", Edge: "CAUSAL ∖ TSO ≠ ∅"},
		{File: "tso_not_lc.ccm", In: "TSO", Out: "LC", Edge: "TSO ∖ LC ≠ ∅"},
		{File: "lb.ccm", In: "LC", Out: "TSO", Edge: "LC ∖ TSO ≠ ∅"},
		{File: "ra_not_causal.ccm", In: "RA", Out: "CAUSAL", Edge: "RA ∖ CAUSAL ≠ ∅ (n=5)"},
		{File: "coww.ccm", In: "CAUSAL", Out: "RA", Edge: "CAUSAL ∖ RA ≠ ∅"},
		{File: "tso_not_lc.ccm", In: "CAUSAL", Out: "LC", Edge: "CAUSAL ∖ LC ≠ ∅"},
		{File: "mp.ccm", In: "LC", Out: "CAUSAL", Edge: "LC ∖ CAUSAL ≠ ∅"},
	}
}

// WitnessResult is the verdict for one claim.
type WitnessResult struct {
	Claim WitnessClaim
	OK    bool
	// Detail explains a failure: which membership disagreed, or why
	// the fixture could not be decided at all.
	Detail string
}

// WitnessReport collects the witness checks of one lattice run.
type WitnessReport struct {
	Dir     string
	Results []WitnessResult
}

// AllOK reports whether every committed witness still witnesses its
// claim.
func (r WitnessReport) AllOK() bool {
	for _, res := range r.Results {
		if !res.OK {
			return false
		}
	}
	return true
}

// String renders the witness table in the lattice-report style.
func (r WitnessReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strictness witnesses (%s)\n", r.Dir)
	for _, res := range r.Results {
		verdict := "OK"
		if !res.OK {
			verdict = "MISMATCH: " + res.Detail
		}
		fmt.Fprintf(&b, "%-24s %-20s ∈ %-6s ∉ %-6s  %s\n",
			res.Claim.Edge, res.Claim.File, res.Claim.In, res.Claim.Out, verdict)
	}
	return b.String()
}

// CheckWitnesses re-decides every committed witness claim against the
// fixtures in dir. An unreadable or unparsable fixture is an error
// (the caller's environment is broken); a fixture that parses but no
// longer separates its models is a failing result (the lattice claim
// is broken).
func CheckWitnesses(dir string) (WitnessReport, error) {
	rep := WitnessReport{Dir: dir}
	for _, claim := range WitnessClaims() {
		in, ok := ModelByName(claim.In)
		if !ok {
			return rep, fmt.Errorf("expt: witness %s names unknown model %s", claim.File, claim.In)
		}
		out, ok := ModelByName(claim.Out)
		if !ok {
			return rep, fmt.Errorf("expt: witness %s names unknown model %s", claim.File, claim.Out)
		}
		f, err := os.Open(filepath.Join(dir, claim.File))
		if err != nil {
			return rep, fmt.Errorf("expt: witness fixture: %w", err)
		}
		named, o, err := observer.ParsePair(f)
		f.Close()
		if err != nil {
			return rep, fmt.Errorf("expt: witness fixture %s: %w", claim.File, err)
		}
		res := WitnessResult{Claim: claim, OK: true}
		if !in.Contains(named.Comp, o) {
			res.OK = false
			res.Detail = fmt.Sprintf("pair ∉ %s", claim.In)
		} else if out.Contains(named.Comp, o) {
			res.OK = false
			res.Detail = fmt.Sprintf("pair ∈ %s", claim.Out)
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

package expt

import (
	"testing"

	"repro/internal/memmodel"
)

func witnessString(p *memmodel.Pair) string {
	if p == nil {
		return "<none>"
	}
	return p.C.String() + " / " + p.O.String()
}

// TestRunLatticeReducedMatchesUnreduced: at every size both paths run,
// the reduced lattice must reproduce the unreduced report exactly —
// per-edge counts, verdicts, and byte-identical witnesses.
func TestRunLatticeReducedMatchesUnreduced(t *testing.T) {
	sizes := []struct{ n, locs int }{{2, 1}, {3, 1}, {3, 2}}
	if !testing.Short() {
		sizes = append(sizes, struct{ n, locs int }{4, 1})
	}
	for _, sz := range sizes {
		full := RunLatticeParallel(sz.n, sz.locs, 2)
		red := RunLatticeReduced(sz.n, sz.locs, 3, nil)
		if red.Pairs != full.Pairs {
			t.Fatalf("n=%d locs=%d: reduced pair total %d != %d", sz.n, sz.locs, red.Pairs, full.Pairs)
		}
		if len(red.Edges) != len(full.Edges) {
			t.Fatalf("n=%d locs=%d: edge count %d != %d", sz.n, sz.locs, len(red.Edges), len(full.Edges))
		}
		for i, fe := range full.Edges {
			re := red.Edges[i]
			if re.Got != fe.Got || re.OK != fe.OK {
				t.Fatalf("n=%d locs=%d edge %s/%s: reduced verdict %q ok=%v, unreduced %q ok=%v",
					sz.n, sz.locs, fe.Edge.A, fe.Edge.B, re.Got, re.OK, fe.Got, fe.OK)
			}
			if re.Relation.AOnly != fe.Relation.AOnly || re.Relation.BOnly != fe.Relation.BOnly ||
				re.Relation.Both != fe.Relation.Both {
				t.Fatalf("n=%d locs=%d edge %s/%s: reduced counts (%d,%d,%d) != unreduced (%d,%d,%d)",
					sz.n, sz.locs, fe.Edge.A, fe.Edge.B,
					re.Relation.AOnly, re.Relation.BOnly, re.Relation.Both,
					fe.Relation.AOnly, fe.Relation.BOnly, fe.Relation.Both)
			}
			if witnessString(re.Relation.WitnessAOnly) != witnessString(fe.Relation.WitnessAOnly) ||
				witnessString(re.Relation.WitnessBOnly) != witnessString(fe.Relation.WitnessBOnly) {
				t.Fatalf("n=%d locs=%d edge %s/%s: reduced witnesses differ\n  A: %s\n  vs %s\n  B: %s\n  vs %s",
					sz.n, sz.locs, fe.Edge.A, fe.Edge.B,
					witnessString(re.Relation.WitnessAOnly), witnessString(fe.Relation.WitnessAOnly),
					witnessString(re.Relation.WitnessBOnly), witnessString(fe.Relation.WitnessBOnly))
			}
		}
		if red.String() != full.String() {
			t.Fatalf("n=%d locs=%d: rendered reports differ:\n%s\nvs\n%s", sz.n, sz.locs, red, full)
		}
	}
}

// TestRunPropertiesReducedMatches: the reduced property sweep must
// reproduce the unreduced report field for field (PropertyReport is
// comparable).
func TestRunPropertiesReducedMatches(t *testing.T) {
	models := []memmodel.Model{memmodel.SC, memmodel.LC, memmodel.NN}
	n := 3
	if !testing.Short() {
		// NN's augmentation failure first appears at size 4; include it so
		// FirstFailure equality is exercised on a failing report too.
		n = 4
	}
	for _, m := range models {
		full := RunProperties(m, n, 1)
		red := RunPropertiesReduced(m, n, 1)
		if full != red {
			t.Fatalf("%s: reduced property report differs:\n%+v\nvs\n%+v", m.Name(), red, full)
		}
	}
}

package expt

import "testing"

// BenchmarkLatticeSweep is the headline experiment benchmark: the full
// Figure 1 lattice check, exhaustively over the one-location universe.
// The unreduced/n=4 entry is the legacy per-edge path at the largest
// size it was ever benchmarked at; reduced/n=5 is the symmetry-reduced
// fused-pattern sweep one size up (a ~48× larger universe). Both run
// serially so the comparison is scheduling-free.
func BenchmarkLatticeSweep(b *testing.B) {
	b.Run("unreduced/n=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep := RunLatticeParallel(4, 1, 1)
			if !rep.AllOK() {
				b.Fatalf("lattice mismatch:\n%s", rep)
			}
		}
	})
	b.Run("reduced/n=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep := RunLatticeReduced(5, 1, 1, nil)
			if !rep.AllOK() {
				b.Fatalf("lattice mismatch:\n%s", rep)
			}
		}
	})
}

package expt

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestReportOK(t *testing.T) {
	if !(StarReport{}).OK() || (StarReport{FirstMismatch: "size 2: ..."}).OK() {
		t.Fatal("StarReport.OK must mirror FirstMismatch")
	}
	all := PropertyReport{Complete: true, Monotonic: true, ConstructibleAug: true}
	if !all.OK() {
		t.Fatal("all-true PropertyReport not OK")
	}
	for _, broken := range []PropertyReport{
		{Monotonic: true, ConstructibleAug: true},
		{Complete: true, ConstructibleAug: true},
		{Complete: true, Monotonic: true},
	} {
		if broken.OK() {
			t.Fatalf("PropertyReport %+v reported OK", broken)
		}
	}
}

func TestMembershipCensusParallelMatchesSerial(t *testing.T) {
	want := MembershipCensus(3, 1)
	for _, workers := range []int{2, 4} {
		if got := MembershipCensusParallel(3, 1, workers); got != want {
			t.Fatalf("workers=%d:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}

type phaseLog struct {
	mu  sync.Mutex
	evs []obs.Event
}

func (l *phaseLog) Record(ev obs.Event) {
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

func TestRunLatticeObsEmitsPhases(t *testing.T) {
	log := &phaseLog{}
	rep := RunLatticeObs(3, 1, 2, log)
	if !rep.AllOK() {
		t.Fatalf("lattice check failed:\n%s", rep)
	}
	edges := LatticeEdges()
	var phases, starts, ends int
	labels := map[string]bool{}
	log.mu.Lock()
	defer log.mu.Unlock()
	for _, ev := range log.evs {
		switch ev.Kind {
		case obs.PhaseStart:
			phases++
			labels[ev.Str] = true
		case obs.RunStart:
			starts++
			labels[ev.Run] = true
		case obs.RunEnd:
			ends++
		}
	}
	if phases != len(edges) || starts != len(edges) || ends != len(edges) {
		t.Fatalf("phases/starts/ends = %d/%d/%d for %d edges", phases, starts, ends, len(edges))
	}
	if !labels["SC vs LC"] || !labels["NW vs WN"] {
		t.Fatalf("edge labels: %v", labels)
	}
}

// Package stats provides the small numeric helpers used by the
// benchmark harness: summary statistics and least-squares fits for the
// speedup curves of the BACKER experiments.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
}

// Summarize computes a Summary. Panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(s.Std / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g std=%.3g min=%.3g med=%.3g max=%.3g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// LinearFit returns the least-squares slope and intercept of y against
// x, plus the coefficient of determination R². Panics unless len(x) ==
// len(y) ≥ 2 with non-constant x.
func LinearFit(x, y []float64) (slope, intercept, r2 float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs two equal-length samples of size ≥ 2")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: LinearFit with constant x")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return slope, intercept, 1
	}
	var ssRes float64
	for i := range x {
		e := y[i] - (slope*x[i] + intercept)
		ssRes += e * e
	}
	return slope, intercept, 1 - ssRes/ssTot
}

package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !almost(s.Mean, 2.5) || !almost(s.Median, 2.5) {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.Min, 1) || !almost(s.Max, 4) {
		t.Fatalf("summary = %+v", s)
	}
	// Sample std of 1,2,3,4 = sqrt(5/3).
	if !almost(s.Std, math.Sqrt(5.0/3.0)) {
		t.Fatalf("std = %v", s.Std)
	}
	odd := Summarize([]float64{5, 1, 3})
	if !almost(odd.Median, 3) {
		t.Fatalf("odd median = %v", odd.Median)
	}
	single := Summarize([]float64{7})
	if single.Std != 0 || single.Median != 7 {
		t.Fatalf("single = %+v", single)
	}
	if !strings.Contains(s.String(), "mean=") {
		t.Fatal("String rendering")
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, r2 := LinearFit(x, y)
	if !almost(slope, 2) || !almost(intercept, 1) || !almost(r2, 1) {
		t.Fatalf("fit = %v, %v, %v", slope, intercept, r2)
	}
}

func TestLinearFitConstantY(t *testing.T) {
	slope, intercept, r2 := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if !almost(slope, 0) || !almost(intercept, 5) || !almost(r2, 1) {
		t.Fatalf("fit = %v, %v, %v", slope, intercept, r2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { LinearFit([]float64{1}, []float64{1}) },
		func() { LinearFit([]float64{1, 2}, []float64{1}) },
		func() { LinearFit([]float64{2, 2}, []float64{1, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: fitting y = a·x + b + noise recovers a and b approximately,
// and R² of noiseless data is 1.
func TestQuickLinearFitRecovers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()*10 - 5
		b := rng.Float64()*10 - 5
		var x, y []float64
		for i := 0; i < 50; i++ {
			xi := float64(i)
			x = append(x, xi)
			y = append(y, a*xi+b)
		}
		slope, intercept, r2 := LinearFit(x, y)
		return math.Abs(slope-a) < 1e-6 && math.Abs(intercept-b) < 1e-6 && r2 > 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max] and shifting the sample shifts
// the mean.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		shifted := make([]float64, n)
		for i := range xs {
			shifted[i] = xs[i] + 100
		}
		s2 := Summarize(shifted)
		return math.Abs(s2.Mean-s.Mean-100) < 1e-9 && math.Abs(s2.Std-s.Std) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Package locks implements the future-work direction the paper names
// in Section 7: "Some models, such as release consistency, require
// computations to be augmented with locks, and how to do this is a
// matter of active research."
//
// The computation-centric reading taken here: a lock discipline marks
// critical sections — (acquire, release) node pairs — on a computation.
// Executing the program serializes each lock's sections in some total
// order, which strengthens the computation with edges from each
// section's release to the next section's acquire. The memory semantics
// of a base model Δ under locking is then
//
//	Locked(Δ) = { (C, Φ) : some serialization C′ of C's critical
//	              sections has (C′, Φ) ∈ Δ }
//
// i.e. the program's dependencies plus *some* consistent lock ordering
// must explain the behavior. Because a serialization only adds edges,
// monotonic base models give Locked(Δ) ⊇ Δ ∩ {lock-free computations};
// for programs whose conflicting accesses are all protected by a common
// lock, the added edges chain the conflicting accesses, and even weak
// base models start excluding racy behaviors — the data-race-free
// intuition behind release consistency, demonstrated in the tests on a
// locked Dekker program.
package locks

import (
	"fmt"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
)

// Lock identifies a mutex.
type Lock int

// Section is one critical section: the nodes that acquire and release
// the lock. Acquire must precede (or equal) Release in the computation.
type Section struct {
	Acquire, Release dag.Node
}

// Discipline maps each lock to its critical sections.
type Discipline map[Lock][]Section

// Validate checks the discipline against the computation: nodes in
// range and acquire ≼ release.
func (d Discipline) Validate(c *computation.Computation) error {
	cl := c.Closure()
	for lk, sections := range d {
		for i, s := range sections {
			if s.Acquire < 0 || int(s.Acquire) >= c.NumNodes() ||
				s.Release < 0 || int(s.Release) >= c.NumNodes() {
				return fmt.Errorf("locks: lock %d section %d out of range", lk, i)
			}
			if !cl.PrecedesEq(s.Acquire, s.Release) {
				return fmt.Errorf("locks: lock %d section %d: acquire %d does not precede release %d",
					lk, i, s.Acquire, s.Release)
			}
		}
	}
	return nil
}

// EachSerialization enumerates every acyclic lock serialization of the
// computation: for each lock independently, a total order of its
// sections, realized as edges release_i → acquire_{i+1}. Orders whose
// edges would create a cycle are skipped (they correspond to no
// execution). The computation passed to fn is freshly built and may be
// retained. Returns the number of serializations visited; stops early
// if fn returns false.
func EachSerialization(c *computation.Computation, d Discipline, fn func(s *computation.Computation) bool) int {
	if err := d.Validate(c); err != nil {
		panic(err)
	}
	locks := make([]Lock, 0, len(d))
	for lk := range d {
		locks = append(locks, lk)
	}
	// Sort for determinism.
	for i := 1; i < len(locks); i++ {
		for j := i; j > 0 && locks[j] < locks[j-1]; j-- {
			locks[j], locks[j-1] = locks[j-1], locks[j]
		}
	}

	visited := 0
	stopped := false
	orders := make([][]Section, len(locks))

	var perLock func(i int)
	perLock = func(i int) {
		if stopped {
			return
		}
		if i == len(locks) {
			strengthened := c.Clone()
			for _, order := range orders {
				for k := 0; k+1 < len(order); k++ {
					if order[k].Release != order[k+1].Acquire {
						strengthened.MustAddEdge(order[k].Release, order[k+1].Acquire)
					}
				}
			}
			if strengthened.Validate() != nil {
				return // cyclic serialization: not realizable
			}
			visited++
			if !fn(strengthened) {
				stopped = true
			}
			return
		}
		sections := d[locks[i]]
		perm := append([]Section(nil), sections...)
		var permute func(k int)
		permute = func(k int) {
			if stopped {
				return
			}
			if k == len(perm) {
				orders[i] = perm
				perLock(i + 1)
				return
			}
			for j := k; j < len(perm); j++ {
				perm[k], perm[j] = perm[j], perm[k]
				permute(k + 1)
				perm[k], perm[j] = perm[j], perm[k]
			}
		}
		permute(0)
	}
	perLock(0)
	return visited
}

// Locked returns the lock-augmented model over the base model for the
// given discipline: a pair is in the model when some serialization of
// the critical sections explains it under base. The model is meaningful
// only for the computation the discipline was written against (other
// computations are checked with no sections, i.e. plain base
// membership).
func Locked(base memmodel.Model, d Discipline) memmodel.Model {
	return memmodel.Func("Locked("+base.Name()+")", func(c *computation.Computation, o *observer.Observer) bool {
		ok := false
		EachSerialization(c, d, func(s *computation.Computation) bool {
			if base.Contains(s, o) {
				ok = true
				return false
			}
			return true
		})
		return ok
	})
}

package locks

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/observer"
	"repro/internal/paperfig"
)

// lockedDekker returns the Dekker computation with each branch wrapped
// in a critical section of one common lock.
func lockedDekker() (*computation.Computation, Discipline) {
	fx := paperfig.Dekker()
	d := Discipline{
		0: {
			{Acquire: 0, Release: 1}, // W(x); R(y)
			{Acquire: 2, Release: 3}, // W(y); R(x)
		},
	}
	return fx.Comp, d
}

func TestDisciplineValidate(t *testing.T) {
	c, d := lockedDekker()
	if err := d.Validate(c); err != nil {
		t.Fatal(err)
	}
	bad := Discipline{0: {{Acquire: 1, Release: 0}}} // release before acquire
	if err := bad.Validate(c); err == nil {
		t.Fatal("reversed section accepted")
	}
	oob := Discipline{0: {{Acquire: 0, Release: 99}}}
	if err := oob.Validate(c); err == nil {
		t.Fatal("out-of-range section accepted")
	}
}

func TestEachSerializationCounts(t *testing.T) {
	c, d := lockedDekker()
	// Two sections of one lock, both orders acyclic: 2 serializations.
	count := EachSerialization(c, d, func(s *computation.Computation) bool {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		// The serialization must order the sections: either R1 -> W2 or
		// R2 -> W1.
		if !s.Dag().HasEdge(1, 2) && !s.Dag().HasEdge(3, 0) {
			t.Fatalf("no lock edge in %v", s)
		}
		return true
	})
	if count != 2 {
		t.Fatalf("serializations = %d, want 2", count)
	}
	// Empty discipline: exactly the original computation.
	n := EachSerialization(c, Discipline{}, func(s *computation.Computation) bool {
		if !s.Equal(c) {
			t.Fatal("empty discipline changed the computation")
		}
		return true
	})
	if n != 1 {
		t.Fatalf("empty discipline serializations = %d", n)
	}
}

func TestEachSerializationSkipsCyclic(t *testing.T) {
	// Two sections forced into one order by an existing edge: the
	// reversed order is cyclic and must be skipped.
	c := computation.New(1)
	a1 := c.AddNode(computation.N)
	r1 := c.AddNode(computation.N)
	a2 := c.AddNode(computation.N)
	r2 := c.AddNode(computation.N)
	c.MustAddEdge(a1, r1)
	c.MustAddEdge(a2, r2)
	c.MustAddEdge(r1, a2) // section 1 already before section 2
	d := Discipline{0: {{a1, r1}, {a2, r2}}}
	count := EachSerialization(c, d, func(*computation.Computation) bool { return true })
	if count != 1 {
		t.Fatalf("serializations = %d, want 1 (the reverse is cyclic)", count)
	}
}

func TestEachSerializationEarlyStop(t *testing.T) {
	c := computation.New(1)
	var secs []Section
	for i := 0; i < 3; i++ {
		a := c.AddNode(computation.N)
		r := c.AddNode(computation.N)
		c.MustAddEdge(a, r)
		secs = append(secs, Section{a, r})
	}
	d := Discipline{0: secs}
	n := 0
	EachSerialization(c, d, func(*computation.Computation) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("early stop visited %d", n)
	}
}

// The headline: wrapping Dekker's branches in a common mutex excludes
// the relaxed outcome even under LC — the lock-augmented semantics
// recovers sequential consistency for this (now race-free) program.
func TestLockedDekkerRecoversSC(t *testing.T) {
	c, d := lockedDekker()
	fx := paperfig.Dekker()
	lockedLC := Locked(memmodel.LC, d)

	if lockedLC.Contains(c, fx.Obs) {
		t.Fatal("the Dekker anomaly must be impossible under Locked(LC)")
	}
	if !memmodel.LC.Contains(c, fx.Obs) {
		t.Fatal("... though plain LC allows it")
	}

	// Every Locked(LC) behavior of this program is SC-explainable on
	// the original computation: a data-race-freedom theorem in
	// miniature, checked exhaustively over all observers.
	observer.Enumerate(c, func(o *observer.Observer) bool {
		if lockedLC.Contains(c, o) && !memmodel.SC.Contains(c, o) {
			t.Fatalf("Locked(LC) behavior outside SC: %v", o)
		}
		return true
	})

	// Locked(LC) is not empty: the serialized outcomes survive.
	count := 0
	observer.Enumerate(c, func(o *observer.Observer) bool {
		if lockedLC.Contains(c, o) {
			count++
		}
		return true
	})
	if count == 0 {
		t.Fatal("Locked(LC) admits no behavior at all")
	}
}

// Dag consistency alone is too weak for the mutex to help: WW imposes
// no cross-location coupling, so Locked(WW) still admits the anomaly.
// Locks restore SC only on top of per-location serialization.
func TestLockedWWStillWeak(t *testing.T) {
	c, d := lockedDekker()
	fx := paperfig.Dekker()
	if !Locked(memmodel.WW, d).Contains(c, fx.Obs) {
		t.Fatal("Locked(WW) should still admit the Dekker anomaly")
	}
	// NN, however, is strong enough here: the lock edges chain each
	// read behind the other branch's write, and ⊥ past a write on a
	// path violates NN's ⊥-triple.
	if Locked(memmodel.NN, d).Contains(c, fx.Obs) {
		t.Fatal("Locked(NN) must reject the anomaly")
	}
}

// Property: on random computations with random disjoint sections,
// every enumerated serialization validates, strengthens the original
// (original is a relaxation of it), and the count never exceeds the
// product of the per-lock factorials.
func TestQuickSerializationsWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		g := dag.Random(rng, n, 0.2)
		ops := make([]computation.Op, n)
		for i := range ops {
			ops[i] = computation.N
		}
		c := computation.MustFrom(g, ops, 1)
		cl := c.Closure()

		// Sample up to two locks with up to two sections each, sections
		// being (u, v) pairs with u ≼ v.
		d := Discipline{}
		for lk := Lock(0); lk < 2; lk++ {
			for s := 0; s < 1+rng.Intn(2); s++ {
				u := dag.Node(rng.Intn(n))
				v := dag.Node(rng.Intn(n))
				if !cl.PrecedesEq(u, v) {
					if cl.PrecedesEq(v, u) {
						u, v = v, u
					} else {
						v = u
					}
				}
				d[lk] = append(d[lk], Section{u, v})
			}
		}
		maxCount := 1
		for _, secs := range d {
			f := 1
			for i := 2; i <= len(secs); i++ {
				f *= i
			}
			maxCount *= f
		}
		ok := true
		count := EachSerialization(c, d, func(s *computation.Computation) bool {
			if s.Validate() != nil || !c.IsRelaxationOf(s) {
				ok = false
				return false
			}
			return true
		})
		return ok && count >= 0 && count <= maxCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLockedRejectsInvalidObserver(t *testing.T) {
	c, d := lockedDekker()
	bad := observer.New(c)
	bad.Set(0, 0, observer.Bottom) // write not observing itself
	if Locked(memmodel.LC, d).Contains(c, bad) {
		t.Fatal("invalid observer accepted")
	}
	_ = dag.None
}

package mw

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"strings"
)

// RealIP resolves the true client address and threads it through the
// request context for ClientIPFrom (the access log reads it there).
//
// X-Forwarded-For is attacker-controlled unless a trusted proxy set
// it, so the resolution is deliberate: start from the TCP peer
// (RemoteAddr); only if that peer is inside a trusted prefix, walk
// X-Forwarded-For right to left, skipping further trusted hops, and
// believe the first untrusted entry. With no trusted proxies (the
// default) the header is ignored entirely.
func RealIP(trusted []netip.Prefix) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ip := clientIP(r, trusted)
			ctx := context.WithValue(r.Context(), ctxKeyClientIP, ip)
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// ClientIPFrom returns the resolved client IP, or "" outside a
// RealIP-wrapped handler.
func ClientIPFrom(ctx context.Context) string {
	ip, _ := ctx.Value(ctxKeyClientIP).(string)
	return ip
}

// PeerIP returns the bare IP of the TCP peer (RemoteAddr without the
// port), best-effort.
func PeerIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func clientIP(r *http.Request, trusted []netip.Prefix) string {
	peer := PeerIP(r)
	addr, err := netip.ParseAddr(peer)
	if err != nil || !inPrefixes(addr, trusted) {
		return peer
	}
	// The peer is a trusted proxy: the rightmost untrusted
	// X-Forwarded-For entry is the client.
	hops := splitForwarded(r.Header.Values("X-Forwarded-For"))
	for i := len(hops) - 1; i >= 0; i-- {
		a, err := netip.ParseAddr(hops[i])
		if err != nil {
			break // garbage beyond here is unattributable
		}
		if !inPrefixes(a, trusted) {
			return a.String()
		}
		if i == 0 {
			return a.String() // every hop trusted: the origin is the client
		}
	}
	return peer
}

// splitForwarded flattens possibly repeated X-Forwarded-For headers
// into trimmed entries, oldest first.
func splitForwarded(headers []string) []string {
	var hops []string
	for _, h := range headers {
		for _, part := range strings.Split(h, ",") {
			if p := strings.TrimSpace(part); p != "" {
				hops = append(hops, p)
			}
		}
	}
	return hops
}

func inPrefixes(a netip.Addr, prefixes []netip.Prefix) bool {
	for _, p := range prefixes {
		if p.Contains(a.Unmap()) {
			return true
		}
	}
	return false
}

// ParseProxyList parses a comma-separated list of CIDR prefixes or
// bare IPs (treated as /32 or /128) into trusted prefixes. An empty
// list is valid and means "trust nobody".
func ParseProxyList(s string) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if p, err := netip.ParsePrefix(part); err == nil {
			out = append(out, p)
			continue
		}
		a, err := netip.ParseAddr(part)
		if err != nil {
			return nil, fmt.Errorf("trusted proxy %q is neither a CIDR prefix nor an IP", part)
		}
		out = append(out, netip.PrefixFrom(a, a.BitLen()))
	}
	return out, nil
}

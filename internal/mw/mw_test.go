package mw

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

func get(h http.Handler, mutate ...func(*http.Request)) *httptest.ResponseRecorder {
	r := httptest.NewRequest(http.MethodGet, "/v1/check", nil)
	r.RemoteAddr = "192.0.2.10:4242"
	for _, m := range mutate {
		m(r)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// TestChainOrder: the first middleware listed is the outermost.
func TestChainOrder(t *testing.T) {
	var order []string
	tag := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		order = append(order, "handler")
	}), tag("outer"), tag("inner"))
	get(h)
	if got := strings.Join(order, ","); got != "outer,inner,handler" {
		t.Errorf("execution order %s, want outer,inner,handler", got)
	}
}

var hexID = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestRequestIDGenerated(t *testing.T) {
	var seen []string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = append(seen, RequestIDFrom(r.Context()))
	}), RequestID())
	w1, w2 := get(h), get(h)
	id1, id2 := w1.Header().Get(HeaderRequestID), w2.Header().Get(HeaderRequestID)
	if !hexID.MatchString(id1) || !hexID.MatchString(id2) {
		t.Fatalf("generated ids %q, %q not 16 hex chars", id1, id2)
	}
	if id1 == id2 {
		t.Error("two requests got the same generated id")
	}
	if len(seen) != 2 || seen[0] != id1 || seen[1] != id2 {
		t.Errorf("context ids %v do not match headers [%s %s]", seen, id1, id2)
	}
}

func TestRequestIDInbound(t *testing.T) {
	var got string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = RequestIDFrom(r.Context())
	}), RequestID())
	cases := []struct {
		inbound string
		keep    bool
	}{
		{"upstream-trace.42", true},
		{"ABCDEF1234567890", true},
		{"short", false},                         // under the length floor
		{strings.Repeat("a", 65), false},         // over the ceiling
		{"bad id with spaces", false},            // unsafe chars
		{"evil\r\nSet-Cookie: pwned=1{}", false}, // header injection
	}
	for _, tc := range cases {
		w := get(h, func(r *http.Request) { r.Header.Set(HeaderRequestID, tc.inbound) })
		echoed := w.Header().Get(HeaderRequestID)
		if tc.keep && (echoed != tc.inbound || got != tc.inbound) {
			t.Errorf("valid inbound id %q was not propagated (header %q, ctx %q)", tc.inbound, echoed, got)
		}
		if !tc.keep {
			if echoed == tc.inbound {
				t.Errorf("invalid inbound id %q was echoed verbatim", tc.inbound)
			}
			if !hexID.MatchString(echoed) {
				t.Errorf("invalid inbound id %q not replaced by a generated one (got %q)", tc.inbound, echoed)
			}
		}
	}
}

func TestRecoveryCompletesExchange(t *testing.T) {
	var info PanicInfo
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}), RequestID(), Recovery(func(p PanicInfo) { info = p }))
	w := get(h)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	id := w.Header().Get(HeaderRequestID)
	if id == "" || !strings.Contains(w.Body.String(), id) {
		t.Errorf("500 body %q does not carry the request id %q", w.Body.String(), id)
	}
	if info.Value != "kaboom" || info.RequestID != id || info.Path != "/v1/check" {
		t.Errorf("panic info %+v, want value kaboom, id %s, path /v1/check", info, id)
	}
	if !strings.Contains(string(info.Stack), "TestRecoveryCompletesExchange") {
		t.Error("panic info stack does not reach the panicking frame")
	}
}

// TestRecoveryAfterPartialWrite: once the header is out, a trailing
// 500 would be a lie; the recovery must swallow the panic without
// rewriting the status.
func TestRecoveryAfterPartialWrite(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "partial")
		panic("late kaboom")
	}), Recovery(nil))
	w := get(h)
	if w.Code != http.StatusOK || w.Body.String() != "partial" {
		t.Errorf("partial exchange rewritten: %d %q", w.Code, w.Body.String())
	}
}

func TestRecoveryReraisesAbortHandler(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}), Recovery(func(PanicInfo) { t.Error("ErrAbortHandler reported as a panic") }))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("ErrAbortHandler was swallowed")
		}
	}()
	get(h)
}

func TestAccessLogLine(t *testing.T) {
	var buf strings.Builder
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "short and stout")
	}), RequestID(), AccessLog(&buf))
	w := get(h)
	line := buf.String()
	for _, want := range []string{
		"method=GET", "path=/v1/check", "status=418", "bytes=15",
		"ip=192.0.2.10", "id=" + w.Header().Get(HeaderRequestID),
	} {
		if !strings.Contains(line, want) {
			t.Errorf("access line %q missing %q", line, want)
		}
	}
	if !strings.Contains(line, "dur_ms=") || !strings.Contains(line, "time=") {
		t.Errorf("access line %q missing timing fields", line)
	}
}

// TestAccessLogSeesRecoveredStatus: with Recovery stacked inside
// AccessLog, a panicking handler logs as the 500 it became.
func TestAccessLogSeesRecoveredStatus(t *testing.T) {
	var buf strings.Builder
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}), AccessLog(&buf), Recovery(nil))
	get(h)
	if !strings.Contains(buf.String(), "status=500") {
		t.Errorf("access line %q does not record the recovered 500", buf.String())
	}
}

func TestRealIP(t *testing.T) {
	trusted, err := ParseProxyList("10.0.0.0/8, 127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		remote string
		xff    string
		want   string
	}{
		{"no proxy, header ignored", "192.0.2.10:4242", "203.0.113.9", "192.0.2.10"},
		{"trusted peer, one hop", "10.1.2.3:80", "203.0.113.9", "203.0.113.9"},
		{"trusted peer, trusted tail skipped", "10.1.2.3:80", "203.0.113.9, 10.9.9.9", "203.0.113.9"},
		{"spoofed prefix beyond untrusted hop", "10.1.2.3:80", "198.51.100.7, 203.0.113.9", "203.0.113.9"},
		{"all hops trusted", "127.0.0.1:80", "10.0.0.5", "10.0.0.5"},
		{"garbage header", "10.1.2.3:80", "not-an-ip", "10.1.2.3"},
		{"empty header", "10.1.2.3:80", "", "10.1.2.3"},
	}
	var got string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = ClientIPFrom(r.Context())
	}), RealIP(trusted))
	for _, tc := range cases {
		get(h, func(r *http.Request) {
			r.RemoteAddr = tc.remote
			if tc.xff != "" {
				r.Header.Set("X-Forwarded-For", tc.xff)
			}
		})
		if got != tc.want {
			t.Errorf("%s: client ip %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestParseProxyListRejectsGarbage(t *testing.T) {
	if _, err := ParseProxyList("10.0.0.0/8, teapot"); err == nil {
		t.Error("garbage proxy list accepted")
	}
	if p, err := ParseProxyList(" "); err != nil || p != nil {
		t.Errorf("blank list = (%v, %v), want empty and nil error", p, err)
	}
	if _, err := ParseProxyList("::1, fd00::/8"); err != nil {
		t.Errorf("IPv6 entries rejected: %v", err)
	}
}

func TestTimeoutBoundsExchange(t *testing.T) {
	var deadline time.Time
	var ok bool
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadline, ok = r.Context().Deadline()
	}), Timeout(250*time.Millisecond))
	get(h)
	if !ok || time.Until(deadline) > 250*time.Millisecond {
		t.Errorf("deadline = (%v, %v), want within 250ms", deadline, ok)
	}

	h = Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, ok = r.Context().Deadline()
	}), Timeout(0))
	get(h)
	if ok {
		t.Error("Timeout(0) still set a deadline")
	}
}

// TestTimeoutExcept: exempt paths see no exchange deadline, everything
// else keeps it — the carve-out the streaming endpoint rides on.
func TestTimeoutExcept(t *testing.T) {
	var deadlines = map[string]bool{}
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, ok := r.Context().Deadline()
		deadlines[r.URL.Path] = ok
	}), TimeoutExcept(250*time.Millisecond, "/v1/trace"))
	get(h, func(r *http.Request) { r.URL.Path = "/v1/trace" })
	get(h, func(r *http.Request) { r.URL.Path = "/v1/verify" })
	if deadlines["/v1/trace"] {
		t.Error("exempt path got an exchange deadline")
	}
	if !deadlines["/v1/verify"] {
		t.Error("non-exempt path lost its exchange deadline")
	}

	// Disabled timeout stays disabled regardless of exemptions.
	var ok bool
	h = Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, ok = r.Context().Deadline()
	}), TimeoutExcept(0, "/v1/trace"))
	get(h)
	if ok {
		t.Error("TimeoutExcept(0) still set a deadline")
	}
}

// TestTimeoutCancelsWaiters: a handler blocked on something
// context-aware (the admission queue, a singleflight fill) unblocks at
// the exchange deadline.
func TestTimeoutCancelsWaiters(t *testing.T) {
	done := make(chan error, 1)
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
		done <- r.Context().Err()
	}), Timeout(30*time.Millisecond))
	get(h)
	select {
	case err := <-done:
		if err != context.DeadlineExceeded {
			t.Errorf("ctx err = %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never observed the exchange deadline")
	}
}

func TestResponseWriterSingleHeader(t *testing.T) {
	w := httptest.NewRecorder()
	rw := wrap(w)
	if wrap(rw) != rw {
		t.Error("wrap re-wrapped an existing responseWriter")
	}
	rw.WriteHeader(http.StatusBadGateway)
	rw.WriteHeader(http.StatusOK) // ignored: header already sent
	rw.Write([]byte("body"))
	if rw.status != http.StatusBadGateway || w.Code != http.StatusBadGateway {
		t.Errorf("status %d/%d, want 502", rw.status, w.Code)
	}
	if rw.bytes != 4 {
		t.Errorf("bytes = %d, want 4", rw.bytes)
	}
}

// Package mw is the boring armor of the serving stack: small,
// composable func(http.Handler) http.Handler middleware that the ccmd
// daemon wraps around the decision endpoints in internal/serve.
//
// The pieces, from the outside of the stack inward:
//
//   - RequestID: accepts or generates an X-Request-Id, echoes it on
//     every response, and threads it through the request context so
//     error bodies, access logs, panic reports, and obs run labels all
//     correlate one exchange.
//   - RealIP: resolves the client address through a configured set of
//     trusted proxies (X-Forwarded-For is only believed when the peer
//     is trusted), so access logs survive a load balancer in front.
//   - AccessLog: one structured logfmt line per completed exchange.
//   - Recovery: catches handler panics, completes the exchange with a
//     500 JSON body carrying the request ID, and hands the panic value
//     and stack to a hook (serve counts it in /statsz and reports it
//     through obs) — the daemon keeps serving.
//   - Timeout: puts a deadline on the whole HTTP exchange via the
//     request context, so a request wedged in the admission queue or
//     behind a stuck singleflight fill is bounded even when the
//     decision's own governors never fire.
//
// Every middleware is independent and ordering is explicit via Chain;
// the composition the daemon uses is documented in internal/serve.
package mw

import "net/http"

// Middleware wraps an http.Handler with one serving-stack behavior.
type Middleware func(http.Handler) http.Handler

// Chain wraps h in mws such that the first middleware listed is the
// outermost (sees the request first, the response last).
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// responseWriter tracks what the inner handler did with the response:
// the status code, the body bytes written, and whether the header has
// been sent (Recovery must not write a 500 over a half-sent body, and
// AccessLog wants the real status).
type responseWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

// wrap returns w as a *responseWriter, reusing an existing wrapper so
// stacked middleware observe one shared view of the exchange.
func wrap(w http.ResponseWriter) *responseWriter {
	if rw, ok := w.(*responseWriter); ok {
		return rw
	}
	return &responseWriter{ResponseWriter: w, status: http.StatusOK}
}

func (w *responseWriter) WriteHeader(code int) {
	if w.wrote {
		return
	}
	w.wrote = true
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *responseWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.WriteHeader(http.StatusOK)
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers keep
// working through the wrapper.
func (w *responseWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController, so
// streaming handlers can reach through the middleware stack to set
// per-connection read/write deadlines.
func (w *responseWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// ctxKey namespaces the package's context values.
type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyClientIP
)

package mw

import (
	"encoding/json"
	"net/http"
	"runtime/debug"
)

// PanicInfo describes one recovered handler panic.
type PanicInfo struct {
	// RequestID is the exchange's correlation id ("" without RequestID
	// middleware outside this one).
	RequestID string
	// Method and Path identify the request.
	Method, Path string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack.
	Stack []byte
}

// Recovery catches a panicking handler and completes the exchange
// instead of letting net/http kill it mid-body: if the response header
// has not been sent yet the client gets a 500 JSON body carrying the
// request ID; either way onPanic (may be nil) receives the panic value
// and stack, and the server keeps serving. http.ErrAbortHandler is
// re-panicked — it is net/http's sanctioned way to abort an exchange,
// not a bug.
func Recovery(onPanic func(PanicInfo)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rw := wrap(w)
			defer func() {
				val := recover()
				if val == nil {
					return
				}
				if val == http.ErrAbortHandler {
					panic(val)
				}
				if onPanic != nil {
					onPanic(PanicInfo{
						RequestID: RequestIDFrom(r.Context()),
						Method:    r.Method,
						Path:      r.URL.Path,
						Value:     val,
						Stack:     debug.Stack(),
					})
				}
				if !rw.wrote {
					rw.Header().Set("Content-Type", "application/json")
					rw.WriteHeader(http.StatusInternalServerError)
					body, _ := json.Marshal(struct {
						Error     string `json:"error"`
						RequestID string `json:"request_id,omitempty"`
					}{"internal server error", RequestIDFrom(r.Context())})
					rw.Write(append(body, '\n'))
				}
			}()
			next.ServeHTTP(rw, r)
		})
	}
}

package mw

import (
	"context"
	"net/http"
	"time"
)

// Timeout puts a deadline on the whole HTTP exchange by replacing the
// request context with a timed one. Everything downstream that honors
// the request context — the admission-queue wait, the singleflight
// wait on a concurrent fill, request decoding — observes it, so a
// wedged search can never outlive its exchange: the serving layer in
// internal/serve clamps this onto the governance Limits (exchange
// budget = decision ceiling + scheduling grace), making the context
// deadline the backstop behind the engine's own governors.
//
// A non-positive d disables the middleware.
func Timeout(d time.Duration) Middleware {
	if d <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

package mw

import (
	"context"
	"net/http"
	"time"
)

// Timeout puts a deadline on the whole HTTP exchange by replacing the
// request context with a timed one. Everything downstream that honors
// the request context — the admission-queue wait, the singleflight
// wait on a concurrent fill, request decoding — observes it, so a
// wedged search can never outlive its exchange: the serving layer in
// internal/serve clamps this onto the governance Limits (exchange
// budget = decision ceiling + scheduling grace), making the context
// deadline the backstop behind the engine's own governors.
//
// A non-positive d disables the middleware.
func Timeout(d time.Duration) Middleware {
	if d <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// TimeoutExcept is Timeout with a list of exempt URL paths that bypass
// the exchange deadline. Streaming endpoints need this: a long-lived
// NDJSON trace stream is healthy for as long as events keep arriving,
// so a blanket exchange deadline sized for one decision would cut it
// off mid-flight. Exempt handlers own their lifetime instead — the
// serving layer bounds them with per-stream read/write deadlines
// derived from its streaming governance (absolute max age plus a
// rolling idle window), which is strictly tighter discipline than an
// unconditional wall-clock cut.
//
// Matching is exact on the request path. A non-positive d disables the
// deadline for every path.
func TimeoutExcept(d time.Duration, exempt ...string) Middleware {
	if d <= 0 || len(exempt) == 0 {
		return Timeout(d)
	}
	skip := make(map[string]bool, len(exempt))
	for _, p := range exempt {
		skip[p] = true
	}
	timed := Timeout(d)
	return func(next http.Handler) http.Handler {
		bounded := timed(next)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if skip[r.URL.Path] {
				next.ServeHTTP(w, r)
				return
			}
			bounded.ServeHTTP(w, r)
		})
	}
}

package mw

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
)

// HeaderRequestID is the correlation header the stack reads and
// echoes.
const HeaderRequestID = "X-Request-Id"

// requestID length bounds for inbound ids: long enough to be unique,
// short enough that a hostile client cannot stuff logs.
const (
	minInboundIDLen = 8
	maxInboundIDLen = 64
)

// RequestID accepts a well-formed inbound X-Request-Id (so a caller or
// an upstream proxy can correlate across hops) or generates a fresh
// one, sets it on the response before the handler runs, and threads it
// through the request context for RequestIDFrom.
func RequestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(HeaderRequestID)
			if !validRequestID(id) {
				id = newRequestID()
			}
			w.Header().Set(HeaderRequestID, id)
			ctx := context.WithValue(r.Context(), ctxKeyRequestID, id)
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// RequestIDFrom returns the exchange's request ID, or "" outside a
// RequestID-wrapped handler.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// validRequestID screens inbound ids: bounded length, characters safe
// for headers and log lines.
func validRequestID(id string) bool {
	if len(id) < minInboundIDLen || len(id) > maxInboundIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// NewRequestID returns a fresh correlation id in the format the
// RequestID middleware accepts verbatim, for clients that originate
// X-Request-Id themselves — the fleet coordinator stamps one id per
// shard dispatch so a shard correlates across the coordinator's obs
// stream and every replica's access log, including retries and hedges
// of the same shard on different replicas.
func NewRequestID() string { return newRequestID() }

// idSeq backs the (never expected) fallback when crypto/rand fails.
var idSeq atomic.Int64

// newRequestID returns 16 hex chars of crypto/rand entropy.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("seq-%012d", idSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

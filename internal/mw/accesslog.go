package mw

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// AccessLog writes one structured logfmt line per completed exchange:
//
//	time=2026-08-08T12:00:00.000Z id=9f86d081deadbeef ip=10.0.0.7
//	method=POST path=/v1/check status=200 bytes=412 dur_ms=3.142
//
// The line is emitted after the handler returns (Recovery inside this
// middleware means panics log as the 500 they became). Writes to w are
// serialized; pass something unbuffered (stderr, a rotated file).
func AccessLog(w io.Writer) Middleware {
	var mu sync.Mutex
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w0 http.ResponseWriter, r *http.Request) {
			rw := wrap(w0)
			start := time.Now()
			next.ServeHTTP(rw, r)
			ip := ClientIPFrom(r.Context())
			if ip == "" {
				ip = PeerIP(r)
			}
			line := fmt.Sprintf("time=%s id=%s ip=%s method=%s path=%s status=%d bytes=%d dur_ms=%.3f\n",
				start.UTC().Format("2006-01-02T15:04:05.000Z"),
				orDash(RequestIDFrom(r.Context())), ip,
				r.Method, r.URL.Path, rw.status, rw.bytes,
				float64(time.Since(start))/float64(time.Millisecond))
			mu.Lock()
			io.WriteString(w, line)
			mu.Unlock()
		})
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

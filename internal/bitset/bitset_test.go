package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if s.Cap() != 100 {
		t.Fatalf("Cap = %d, want 100", s.Cap())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("set missing %d after Add", i)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("set contains 64 after Remove")
	}
	if s.Len() != 7 {
		t.Fatalf("Len = %d, want 7", s.Len())
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(){
		func() { New(10).Add(10) },
		func() { New(10).Add(-1) },
		func() { New(10).Contains(11) },
		func() { New(10).Remove(10) },
		func() { New(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFillAndClear(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		s := New(n)
		s.Fill()
		if s.Len() != n {
			t.Fatalf("n=%d: Len after Fill = %d", n, s.Len())
		}
		s.Clear()
		if !s.Empty() {
			t.Fatalf("n=%d: not empty after Clear", n)
		}
	}
}

func TestSetOps(t *testing.T) {
	a := New(70)
	b := New(70)
	for _, i := range []int{1, 2, 3, 65} {
		a.Add(i)
	}
	for _, i := range []int{3, 4, 65, 66} {
		b.Add(i)
	}

	u := a.Clone()
	u.UnionWith(b)
	want := []int{1, 2, 3, 4, 65, 66}
	got := u.Elements()
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union = %v, want %v", got, want)
		}
	}

	x := a.Clone()
	x.IntersectWith(b)
	if x.String() != "{3, 65}" {
		t.Fatalf("intersection = %s, want {3, 65}", x)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if d.String() != "{1, 2}" {
		t.Fatalf("difference = %s, want {1, 2}", d)
	}
}

func TestSubsetIntersects(t *testing.T) {
	a := New(10)
	b := New(10)
	a.Add(1)
	a.Add(2)
	b.Add(1)
	b.Add(2)
	b.Add(3)
	if !a.SubsetOf(b) {
		t.Fatal("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Fatal("b should not be subset of a")
	}
	if !a.Intersects(b) {
		t.Fatal("a should intersect b")
	}
	c := New(10)
	c.Add(9)
	if a.Intersects(c) {
		t.Fatal("a should not intersect c")
	}
	if !c.SubsetOf(c) {
		t.Fatal("set should be subset of itself")
	}
}

func TestEqualDifferentCap(t *testing.T) {
	if New(10).Equal(New(11)) {
		t.Fatal("sets of different capacity compare equal")
	}
}

func TestMismatchedCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	New(10).UnionWith(New(11))
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i += 7 {
		s.Add(i)
	}
	count := 0
	s.ForEach(func(i int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("visited %d elements, want 3", count)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(10)
	a.Add(5)
	b := a.Clone()
	b.Add(6)
	if a.Contains(6) {
		t.Fatal("Clone shares storage with original")
	}
	if !b.Contains(5) {
		t.Fatal("Clone lost element")
	}
}

func TestStringEmpty(t *testing.T) {
	if got := New(5).String(); got != "{}" {
		t.Fatalf("String = %q, want {}", got)
	}
}

// Property: a set behaves like a map[int]bool under a random op sequence.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 150
		s := New(n)
		m := make(map[int]bool)
		for step := 0; step < 500; step++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(i)
				m[i] = true
			case 1:
				s.Remove(i)
				delete(m, i)
			case 2:
				if s.Contains(i) != m[i] {
					return false
				}
			}
		}
		if s.Len() != len(m) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Contains(i) != m[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish identity |A∪B| + |A∩B| == |A| + |B|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 90
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
			}
			if rng.Intn(2) == 0 {
				b.Add(i)
			}
		}
		u := a.Clone()
		u.UnionWith(b)
		x := a.Clone()
		x.IntersectWith(b)
		return u.Len()+x.Len() == a.Len()+b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionWith(b *testing.B) {
	a := New(4096)
	c := New(4096)
	for i := 0; i < 4096; i += 3 {
		a.Add(i)
	}
	for i := 0; i < 4096; i += 5 {
		c.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.UnionWith(c)
	}
}

// Package bitset provides a compact fixed-capacity bit set used for
// reachability computations over computation dags.
//
// The zero value of Set is an empty set with capacity zero; use New to
// create a set that can hold indices in [0, n).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity set of small non-negative integers.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set capable of holding elements in [0, n).
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Cap returns the capacity of the set (elements may be in [0, Cap())).
func (s *Set) Cap() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds every element in [0, Cap()).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes bits beyond capacity so that Len and Equal stay exact.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(s.n%wordBits)) - 1
	}
}

func (s *Set) sameCap(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
}

// UnionWith adds every element of t to s.
func (s *Set) UnionWith(t *Set) {
	s.sameCap(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t *Set) {
	s.sameCap(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// DifferenceWith removes every element of t from s.
func (s *Set) DifferenceWith(t *Set) {
	s.sameCap(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Equal reports whether s and t contain exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range t.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	s.sameCap(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share at least one element.
func (s *Set) Intersects(t *Set) bool {
	s.sameCap(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Words exposes the backing word slice (least-significant word first,
// bit i of word w representing element w*64+i). The slice is shared
// with the set and must be treated as read-only; it is stable because
// sets never grow after New. It exists for performance-critical callers
// (state-key encoding in internal/search) that would otherwise copy the
// set bit by bit.
func (s *Set) Words() []uint64 { return s.words }

// ForEach calls fn for each element in increasing order. If fn returns
// false, iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Elements returns the elements of the set in increasing order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the set as "{0, 3, 17}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

package observer

import (
	"repro/internal/computation"
	"repro/internal/dag"
)

// Candidates returns, for each (location, node) pair, the set of values
// that conditions 2.1–2.3 allow Φ(l, u) to take:
//
//   - if op(u) = W(l): exactly {u} (condition 2.3);
//   - otherwise: {⊥} ∪ {w : op(w) = W(l), ¬(u ≺ w)} (conditions 2.1, 2.2).
//
// The result is indexed cands[l][u]. Every observer function is a
// member of the candidate product, and conversely every member of the
// product is a valid observer function, so the product enumerates the
// full observer space exactly.
func Candidates(c *computation.Computation) [][][]dag.Node {
	cl := c.Closure()
	n := c.NumNodes()
	cands := make([][][]dag.Node, c.NumLocs())
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		writers := c.Writers(l)
		cands[l] = make([][]dag.Node, n)
		for u := dag.Node(0); int(u) < n; u++ {
			if c.Op(u).IsWriteTo(l) {
				cands[l][u] = []dag.Node{u}
				continue
			}
			row := []dag.Node{Bottom}
			for _, w := range writers {
				if !cl.Precedes(u, w) {
					row = append(row, w)
				}
			}
			cands[l][u] = row
		}
	}
	return cands
}

// Enumerate visits every observer function of c exactly once. The
// Observer passed to fn is reused between calls; Clone it to retain.
// Enumeration stops early if fn returns false. Returns the number
// visited. The count is the product of candidate-set sizes, which grows
// exponentially; this is intended for the small-universe experiments.
func Enumerate(c *computation.Computation, fn func(o *Observer) bool) int {
	cands := Candidates(c)
	o := New(c)
	n := c.NumNodes()
	total := c.NumLocs() * n
	visited := 0
	stopped := false

	var rec func(slot int)
	rec = func(slot int) {
		if stopped {
			return
		}
		if slot == total {
			visited++
			if !fn(o) {
				stopped = true
			}
			return
		}
		l := computation.Loc(slot / n)
		u := dag.Node(slot % n)
		for _, v := range cands[l][u] {
			o.set(l, u, v)
			rec(slot + 1)
			if stopped {
				return
			}
		}
	}
	rec(0)
	return visited
}

// Count returns the number of observer functions of c without
// materializing them: the product of candidate-set sizes. Pass limit > 0
// to saturate the count (useful to bound work); limit <= 0 counts all.
func Count(c *computation.Computation, limit int) int {
	cands := Candidates(c)
	count := 1
	for l := range cands {
		for u := range cands[l] {
			count *= len(cands[l][u])
			if limit > 0 && count >= limit {
				return limit
			}
		}
	}
	return count
}

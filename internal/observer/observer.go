// Package observer implements observer functions, the technical device
// the paper uses to give memory semantics (Definition 2 of Frigo &
// Luchangco, SPAA 1998).
//
// For a computation C over locations L, an observer function maps each
// (location, node) pair to the write whose value that node observes at
// that location, or ⊥ ("no write observed", represented by dag.None).
// Definition 2 imposes three conditions:
//
//	2.1  if Φ(l,u) = v ≠ ⊥ then op(v) = W(l)        (observe only writes)
//	2.2  ¬(u ≺ Φ(l,u))                              (no observing the future)
//	2.3  if op(u) = W(l) then Φ(l,u) = u            (writes observe themselves)
//
// Condition 2.2, with the convention ⊥ ≺ u for every node u, forces
// Φ(l,⊥) = ⊥, so the ⊥ row is not stored.
//
// The package also implements the last-writer function W_T of a
// topological sort T (Definition 13), which underlies the SC and LC
// models, and exhaustive enumeration of all observer functions of a
// computation, which powers the small-universe experiments.
package observer

import (
	"fmt"
	"strings"

	"repro/internal/computation"
	"repro/internal/dag"
)

// Bottom is the ⊥ value of the paper: "no write observed".
const Bottom = dag.None

// Observer is an observer function candidate: a total assignment of
// L × V → V ∪ {⊥}. Use Validate to check Definition 2. The zero value is
// not useful; construct with New or FromLastWriter.
type Observer struct {
	numLocs int
	n       int
	val     []dag.Node // val[int(l)*n + int(u)]
}

// New returns the canonical minimal observer for c: every write observes
// itself (condition 2.3) and every other entry is ⊥. This is always a
// valid observer function.
func New(c *computation.Computation) *Observer {
	o := &Observer{
		numLocs: c.NumLocs(),
		n:       c.NumNodes(),
		val:     make([]dag.Node, c.NumLocs()*c.NumNodes()),
	}
	for i := range o.val {
		o.val[i] = Bottom
	}
	for u := 0; u < o.n; u++ {
		op := c.Op(dag.Node(u))
		if op.Kind == computation.Write {
			o.set(op.Loc, dag.Node(u), dag.Node(u))
		}
	}
	return o
}

// NumLocs returns |L|.
func (o *Observer) NumLocs() int { return o.numLocs }

// NumNodes returns |V_C|.
func (o *Observer) NumNodes() int { return o.n }

func (o *Observer) idx(l computation.Loc, u dag.Node) int {
	if l < 0 || int(l) >= o.numLocs {
		panic(fmt.Sprintf("observer: location %d out of range [0,%d)", l, o.numLocs))
	}
	if u < 0 || int(u) >= o.n {
		panic(fmt.Sprintf("observer: node %d out of range [0,%d)", u, o.n))
	}
	return int(l)*o.n + int(u)
}

// Get returns Φ(l, u). For u = ⊥ it returns ⊥ (condition 2.2 forces it).
func (o *Observer) Get(l computation.Loc, u dag.Node) dag.Node {
	if u == Bottom {
		return Bottom
	}
	return o.val[o.idx(l, u)]
}

// Set assigns Φ(l, u) = v without validity checking; run Validate after
// building an observer by hand.
func (o *Observer) Set(l computation.Loc, u, v dag.Node) {
	if v != Bottom && (v < 0 || int(v) >= o.n) {
		panic(fmt.Sprintf("observer: value %d out of range", v))
	}
	o.set(l, u, v)
}

func (o *Observer) set(l computation.Loc, u, v dag.Node) {
	o.val[o.idx(l, u)] = v
}

// Validate checks Definition 2 against the computation c. The observer
// must have been built for a computation with the same shape.
func (o *Observer) Validate(c *computation.Computation) error {
	if c.NumNodes() != o.n || c.NumLocs() != o.numLocs {
		return fmt.Errorf("observer: shape mismatch (%d nodes/%d locs vs computation %d/%d)",
			o.n, o.numLocs, c.NumNodes(), c.NumLocs())
	}
	cl := c.Closure()
	for l := computation.Loc(0); int(l) < o.numLocs; l++ {
		for u := dag.Node(0); int(u) < o.n; u++ {
			v := o.Get(l, u)
			if v != Bottom && !c.Op(v).IsWriteTo(l) {
				return fmt.Errorf("observer: Φ(%d,%d) = %d is not a write to %d (violates 2.1)", l, u, v, l)
			}
			if cl.Precedes(u, v) {
				return fmt.Errorf("observer: node %d strictly precedes its observed write %d at location %d (violates 2.2)", u, v, l)
			}
			if c.Op(u).IsWriteTo(l) && v != u {
				return fmt.Errorf("observer: write node %d observes %d, not itself, at location %d (violates 2.3)", u, v, l)
			}
		}
	}
	return nil
}

// Clone returns an independent copy.
func (o *Observer) Clone() *Observer {
	c := &Observer{numLocs: o.numLocs, n: o.n, val: make([]dag.Node, len(o.val))}
	copy(c.val, o.val)
	return c
}

// Equal reports whether two observers assign identically.
func (o *Observer) Equal(p *Observer) bool {
	if o.numLocs != p.numLocs || o.n != p.n {
		return false
	}
	for i := range o.val {
		if o.val[i] != p.val[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string key identifying the assignment, suitable
// for use in maps during enumeration experiments.
func (o *Observer) Key() string {
	var b strings.Builder
	for _, v := range o.val {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// Restrict returns the restriction Φ|_C′ of the observer to the prefix
// consisting of the first n node ids (the package-wide extension
// convention: prefixes keep low ids). The second result is false if some
// retained entry observes a node outside the prefix, in which case the
// restriction is not an observer function for the prefix.
func (o *Observer) Restrict(n int) (*Observer, bool) {
	if n < 0 || n > o.n {
		panic(fmt.Sprintf("observer: Restrict(%d) out of range [0,%d]", n, o.n))
	}
	r := &Observer{numLocs: o.numLocs, n: n, val: make([]dag.Node, o.numLocs*n)}
	for l := 0; l < o.numLocs; l++ {
		for u := 0; u < n; u++ {
			v := o.val[l*o.n+u]
			if v != Bottom && int(v) >= n {
				return nil, false
			}
			r.val[l*n+u] = v
		}
	}
	return r, true
}

// Extends reports whether o agrees with p on p's (smaller) domain, i.e.
// o|_C = p where p is an observer for a prefix of o's computation.
func (o *Observer) Extends(p *Observer) bool {
	if o.numLocs != p.numLocs || o.n < p.n {
		return false
	}
	for l := 0; l < o.numLocs; l++ {
		for u := 0; u < p.n; u++ {
			if o.val[l*o.n+u] != p.val[l*p.n+u] {
				return false
			}
		}
	}
	return true
}

// String renders the observer as "Φ(l0: 0→⊥ 1→0; l1: ...)".
func (o *Observer) String() string {
	var b strings.Builder
	b.WriteString("Φ(")
	for l := 0; l < o.numLocs; l++ {
		if l > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "l%d:", l)
		for u := 0; u < o.n; u++ {
			v := o.val[l*o.n+u]
			if v == Bottom {
				fmt.Fprintf(&b, " %d→⊥", u)
			} else {
				fmt.Fprintf(&b, " %d→%d", u, v)
			}
		}
	}
	b.WriteByte(')')
	return b.String()
}

package observer

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParsePair drives the combined computation+observer parser with
// arbitrary input. The contract of the input boundary: any byte
// sequence either parses into a pair whose observer validates against
// its computation, or returns an error — never a panic.
func FuzzParsePair(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.ccm"))
	for _, p := range seeds {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(string(b))
		}
	}
	f.Add("locs x\nnode A W(x)\nnode B R(x)\nedge A B\nobserve B x A\n")
	f.Add("locs x\nnode A W(x)\nobserve A x bottom\n") // write observing ⊥ (invalid)
	f.Add("observe A x A\n")                           // observe with no computation
	f.Add("locs x x\nobserve A x A\n")                 // duplicate location
	f.Fuzz(func(t *testing.T, input string) {
		named, o, err := ParsePairString(input)
		if err != nil {
			return
		}
		// ParsePair validates before returning; re-check the
		// postcondition explicitly so fuzzing pins it.
		if verr := o.Validate(named.Comp); verr != nil {
			t.Fatalf("parsed observer fails validation: %v", verr)
		}
	})
}

package observer

import (
	"strings"
	"testing"
)

const pairText = `locs x
node A W(x)
node B R(x)
node C R(x)
edge A B
edge B C
observe B x A
observe C x bottom
`

func TestParsePair(t *testing.T) {
	named, o, err := ParsePairString(pairText)
	if err != nil {
		t.Fatal(err)
	}
	if o.Get(0, named.NodeID["B"]) != named.NodeID["A"] {
		t.Fatal("observe line not applied")
	}
	if o.Get(0, named.NodeID["C"]) != Bottom {
		t.Fatal("bottom observe not applied")
	}
	if o.Get(0, named.NodeID["A"]) != named.NodeID["A"] {
		t.Fatal("default self-observation lost")
	}
}

func TestParsePairUnicodeBottom(t *testing.T) {
	_, o, err := ParsePairString("locs x\nnode A R(x)\nobserve A x ⊥\n")
	if err != nil {
		t.Fatal(err)
	}
	if o.Get(0, 0) != Bottom {
		t.Fatal("⊥ spelling not accepted")
	}
}

func TestParsePairErrors(t *testing.T) {
	cases := []string{
		"locs x\nnode A R(x)\nobserve A x",        // short line
		"locs x\nnode A R(x)\nobserve Z x bottom", // unknown node
		"locs x\nnode A R(x)\nobserve A y bottom", // unknown loc
		"locs x\nnode A R(x)\nobserve A x Z",      // unknown writer
		"locs x\nnode A R(x)\nobserve A x A",      // invalid: read observes itself
		"locs x\nnode A W(x)\nobserve A x bottom", // invalid: write must observe itself
		"bogus\nobserve A x bottom",               // computation parse error
	}
	for _, src := range cases {
		if _, _, err := ParsePairString(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestFormatPairRoundTrip(t *testing.T) {
	named, o, err := ParsePairString(pairText)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := FormatPair(&b, named, o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Only the non-default entry appears.
	if !strings.Contains(out, "observe B x A") {
		t.Fatalf("missing observe line:\n%s", out)
	}
	if strings.Contains(out, "observe C") || strings.Contains(out, "observe A") {
		t.Fatalf("default entries should not be emitted:\n%s", out)
	}
	named2, o2, err := ParsePairString(out)
	if err != nil {
		t.Fatal(err)
	}
	if !named.Comp.Equal(named2.Comp) || !o.Equal(o2) {
		t.Fatal("round trip changed the pair")
	}
}

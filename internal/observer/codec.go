package observer

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/computation"
	"repro/internal/dag"
)

// This file extends the computation text format with observer lines, so
// the cmd tools can check (computation, observer) pairs from files:
//
//	locs x
//	node A W(x)
//	node B R(x)
//	edge A B
//	observe B x A      # Φ(x, B) = A
//	observe B x bottom # Φ(x, B) = ⊥
//
// Entries not mentioned keep the canonical defaults of New: writes
// observe themselves, everything else observes ⊥.

// ParsePair reads a computation and an observer function from the
// combined text format. Like computation.Parse, it is an input
// boundary: malformed files return errors, and a recover fence
// converts any panic a hostile file provokes into one.
func ParsePair(r io.Reader) (named *computation.Named, o *Observer, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			named, o, err = nil, nil, fmt.Errorf("observer: invalid input: %v", rec)
		}
	}()
	var compLines, obsLines []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "observe") {
			obsLines = append(obsLines, line)
		} else {
			compLines = append(compLines, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	named, err = computation.Parse(strings.NewReader(strings.Join(compLines, "\n")))
	if err != nil {
		return nil, nil, err
	}
	o = New(named.Comp)
	for i, line := range obsLines {
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, nil, fmt.Errorf("observe line %d: want `observe NODE LOC WRITER`", i+1)
		}
		u, ok := named.NodeID[fields[1]]
		if !ok {
			return nil, nil, fmt.Errorf("observe line %d: unknown node %q", i+1, fields[1])
		}
		l, ok := named.LocID[fields[2]]
		if !ok {
			return nil, nil, fmt.Errorf("observe line %d: unknown location %q", i+1, fields[2])
		}
		var w dag.Node
		if fields[3] == "bottom" || fields[3] == "⊥" {
			w = Bottom
		} else {
			w, ok = named.NodeID[fields[3]]
			if !ok {
				return nil, nil, fmt.Errorf("observe line %d: unknown writer %q", i+1, fields[3])
			}
		}
		o.Set(l, u, w)
	}
	if err := o.Validate(named.Comp); err != nil {
		return nil, nil, err
	}
	return named, o, nil
}

// ParsePairString is ParsePair over a string.
func ParsePairString(s string) (*computation.Named, *Observer, error) {
	return ParsePair(strings.NewReader(s))
}

// FormatPair renders the computation and the observer's non-default
// entries in the format accepted by ParsePair.
func FormatPair(w io.Writer, named *computation.Named, o *Observer) error {
	if err := named.Format(w); err != nil {
		return err
	}
	c := named.Comp
	def := New(c)
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		for u := dag.Node(0); int(u) < c.NumNodes(); u++ {
			v := o.Get(l, u)
			if v == def.Get(l, u) {
				continue
			}
			target := "bottom"
			if v != Bottom {
				target = named.NodeName[v]
			}
			if _, err := fmt.Fprintf(w, "observe %s %s %s\n",
				named.NodeName[u], named.LocName[l], target); err != nil {
				return err
			}
		}
	}
	return nil
}

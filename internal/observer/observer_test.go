package observer

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/computation"
	"repro/internal/dag"
)

// chainWRW builds 0:W(0) -> 1:R(0) -> 2:W(0).
func chainWRW() *computation.Computation {
	c := computation.New(1)
	a := c.AddNode(computation.W(0))
	b := c.AddNode(computation.R(0))
	d := c.AddNode(computation.W(0))
	c.MustAddEdge(a, b)
	c.MustAddEdge(b, d)
	return c
}

// randomComputation builds a random computation for property tests.
func randomComputation(rng *rand.Rand, maxNodes, maxLocs int) *computation.Computation {
	n := rng.Intn(maxNodes + 1)
	locs := 1 + rng.Intn(maxLocs)
	g := dag.Random(rng, n, 0.35)
	all := computation.AllOps(locs)
	ops := make([]computation.Op, n)
	for i := range ops {
		ops[i] = all[rng.Intn(len(all))]
	}
	return computation.MustFrom(g, ops, locs)
}

func TestNewIsValid(t *testing.T) {
	c := chainWRW()
	o := New(c)
	if err := o.Validate(c); err != nil {
		t.Fatal(err)
	}
	// Writes observe themselves, read observes bottom.
	if o.Get(0, 0) != 0 || o.Get(0, 2) != 2 {
		t.Fatal("writes must observe themselves")
	}
	if o.Get(0, 1) != Bottom {
		t.Fatal("fresh read must observe ⊥")
	}
	if o.Get(0, Bottom) != Bottom {
		t.Fatal("Φ(l,⊥) must be ⊥")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	c := chainWRW()

	// 2.1: observing a non-write.
	o := New(c)
	o.Set(0, 1, 1) // node 1 is a read
	if err := o.Validate(c); err == nil || !strings.Contains(err.Error(), "2.1") {
		t.Fatalf("2.1 violation not caught: %v", err)
	}

	// 2.2: observing the future.
	o = New(c)
	o.Set(0, 1, 2) // node 1 precedes write 2
	if err := o.Validate(c); err == nil || !strings.Contains(err.Error(), "2.2") {
		t.Fatalf("2.2 violation not caught: %v", err)
	}

	// 2.3: write not observing itself.
	o = New(c)
	o.Set(0, 2, 0)
	if err := o.Validate(c); err == nil || !strings.Contains(err.Error(), "2.3") {
		t.Fatalf("2.3 violation not caught: %v", err)
	}

	// Shape mismatch.
	o = New(c)
	c2 := computation.New(2)
	if err := o.Validate(c2); err == nil {
		t.Fatal("shape mismatch not caught")
	}
}

func TestObservingIncomparableWriteIsLegal(t *testing.T) {
	// Two parallel nodes: 0:W(0) || 1:R(0). The read may observe the
	// incomparable write (this is what relaxed models permit).
	c := computation.New(1)
	c.AddNode(computation.W(0))
	c.AddNode(computation.R(0))
	o := New(c)
	o.Set(0, 1, 0)
	if err := o.Validate(c); err != nil {
		t.Fatal(err)
	}
}

func TestSetGetPanics(t *testing.T) {
	c := chainWRW()
	o := New(c)
	for i, fn := range []func(){
		func() { o.Get(1, 0) },    // bad loc
		func() { o.Get(0, 9) },    // bad node
		func() { o.Set(0, 0, 9) }, // bad value
		func() { o.Set(0, 9, 0) }, // bad node
		func() { o.Restrict(-1) }, // bad restrict
		func() { o.Restrict(99) }, // bad restrict
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCloneEqual(t *testing.T) {
	c := chainWRW()
	o := New(c)
	p := o.Clone()
	if !o.Equal(p) {
		t.Fatal("clone not equal")
	}
	p.Set(0, 1, 0)
	if o.Equal(p) {
		t.Fatal("clone shares storage")
	}
	if o.Get(0, 1) != Bottom {
		t.Fatal("mutating clone changed original")
	}
}

func TestKeyDistinguishes(t *testing.T) {
	c := chainWRW()
	o := New(c)
	p := o.Clone()
	p.Set(0, 1, 0)
	if o.Key() == p.Key() {
		t.Fatal("different observers share a key")
	}
	if o.Key() != o.Clone().Key() {
		t.Fatal("equal observers have different keys")
	}
}

func TestRestrictAndExtends(t *testing.T) {
	c := chainWRW()
	o := New(c)
	o.Set(0, 1, 0)
	r, ok := o.Restrict(2)
	if !ok {
		t.Fatal("restriction should exist")
	}
	if r.NumNodes() != 2 || r.Get(0, 1) != 0 {
		t.Fatalf("restriction wrong: %v", r)
	}
	if !o.Extends(r) {
		t.Fatal("observer must extend its restriction")
	}
	// Restriction fails when a value escapes the prefix: make node 0's
	// entry point at node 2. (Invalid as an observer but Restrict is
	// value-level.)
	o2 := New(c)
	o2.Set(0, 1, 2)
	if _, ok := o2.Restrict(2); ok {
		t.Fatal("escaping value must fail restriction")
	}
	// Extends with mismatched entry.
	r2 := r.Clone()
	r2.Set(0, 1, Bottom)
	if o.Extends(r2) {
		t.Fatal("Extends must compare entries")
	}
}

func TestString(t *testing.T) {
	c := chainWRW()
	o := New(c)
	s := o.String()
	if !strings.Contains(s, "⊥") || !strings.Contains(s, "l0") {
		t.Fatalf("String = %q", s)
	}
}

func TestLastWriterChain(t *testing.T) {
	c := chainWRW()
	order := []dag.Node{0, 1, 2}
	row := LastWriterForLoc(c, order, 0)
	want := []dag.Node{0, 0, 2}
	for u := range want {
		if row[u] != want[u] {
			t.Fatalf("row = %v, want %v", row, want)
		}
	}
}

func TestLastWriterBadOrderPanics(t *testing.T) {
	c := chainWRW()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LastWriterForLoc(c, []dag.Node{2, 1, 0}, 0)
}

// Theorem 16: the last-writer function of any topological sort is a
// valid observer function.
func TestTheorem16LastWriterIsObserver(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		c := randomComputation(rng, 7, 2)
		count := 0
		c.Dag().EachTopoSort(func(order []dag.Node) bool {
			o := FromLastWriter(c, order)
			if err := o.Validate(c); err != nil {
				t.Fatalf("W_T not an observer for %v, T=%v: %v", c, order, err)
			}
			count++
			return count < 10 // a few sorts per computation suffice
		})
	}
}

// Theorem 15 (sandwich property): if W_T(l,u) ≺_T v ≼_T u then
// W_T(l,v) = W_T(l,u).
func TestTheorem15Sandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		c := randomComputation(rng, 7, 2)
		order, err := c.Dag().TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		pos := make([]int, c.NumNodes())
		for i, u := range order {
			pos[u] = i
		}
		for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
			row := LastWriterForLoc(c, order, l)
			for _, u := range order {
				w := row[u]
				if w == Bottom {
					continue
				}
				for _, v := range order {
					if pos[w] < pos[v] && pos[v] <= pos[u] && row[v] != w {
						t.Fatalf("sandwich violated: W(%d)=%d but W(%d)=%d", u, w, v, row[v])
					}
				}
			}
		}
	}
}

func TestFromPerLocationSorts(t *testing.T) {
	// Two locations, two parallel writers; different sorts per location.
	c := computation.New(2)
	c.AddNode(computation.W(0))
	c.AddNode(computation.W(1))
	c.AddNode(computation.R(0))
	c.AddNode(computation.R(1))
	o := FromPerLocationSorts(c, [][]dag.Node{
		{0, 1, 2, 3},
		{1, 0, 2, 3},
	})
	if err := o.Validate(c); err != nil {
		t.Fatal(err)
	}
	if o.Get(0, 2) != 0 || o.Get(1, 3) != 1 {
		t.Fatal("per-location last writers wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong sort count must panic")
			}
		}()
		FromPerLocationSorts(c, [][]dag.Node{{0, 1, 2, 3}})
	}()
}

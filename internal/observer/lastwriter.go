package observer

import (
	"fmt"

	"repro/internal/computation"
	"repro/internal/dag"
)

// This file implements the last-writer function of Definition 13: given
// a topological sort T of a computation, W_T(l, u) is the unique last
// node at or before u in T that writes to l, or ⊥ if there is none.
// Theorem 16 states that W_T is always an observer function; the tests
// machine-check that claim.

// LastWriterForLoc returns the row W_T(l, ·) as a slice indexed by node:
// row[u] = W_T(l, u). It panics if order is not a topological sort of c.
func LastWriterForLoc(c *computation.Computation, order []dag.Node, l computation.Loc) []dag.Node {
	if !c.Dag().IsTopoSort(order) {
		panic(fmt.Sprintf("observer: order %v is not a topological sort of %v", order, c))
	}
	row := make([]dag.Node, c.NumNodes())
	last := Bottom
	for _, u := range order {
		if c.Op(u).IsWriteTo(l) {
			last = u
		}
		row[u] = last
	}
	return row
}

// FromLastWriter returns the full last-writer observer W_T for the
// topological sort T = order: for every location l and node u,
// Φ(l, u) = W_T(l, u). By Theorem 16 the result is a valid observer
// function for c, and by construction it is an SC witness (Definition 17).
func FromLastWriter(c *computation.Computation, order []dag.Node) *Observer {
	o := New(c)
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		row := LastWriterForLoc(c, order, l)
		for u := range row {
			o.set(l, dag.Node(u), row[u])
		}
	}
	return o
}

// FromPerLocationSorts returns the observer assembled from one
// topological sort per location: Φ(l, ·) = W_{T_l}(l, ·). This is the
// shape of a location-consistency witness (Definition 18).
func FromPerLocationSorts(c *computation.Computation, orders [][]dag.Node) *Observer {
	if len(orders) != c.NumLocs() {
		panic(fmt.Sprintf("observer: %d sorts for %d locations", len(orders), c.NumLocs()))
	}
	o := New(c)
	for l := computation.Loc(0); int(l) < c.NumLocs(); l++ {
		row := LastWriterForLoc(c, orders[l], l)
		for u := range row {
			o.set(l, dag.Node(u), row[u])
		}
	}
	return o
}

package observer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/computation"
	"repro/internal/dag"
)

func TestCandidatesChain(t *testing.T) {
	c := chainWRW() // 0:W -> 1:R -> 2:W
	cands := Candidates(c)
	// Node 0 and 2 are writes: singleton {self}.
	if len(cands[0][0]) != 1 || cands[0][0][0] != 0 {
		t.Fatalf("cands[0][0] = %v", cands[0][0])
	}
	if len(cands[0][2]) != 1 || cands[0][2][0] != 2 {
		t.Fatalf("cands[0][2] = %v", cands[0][2])
	}
	// Node 1 (read) may observe ⊥ or write 0; write 2 follows it.
	if len(cands[0][1]) != 2 || cands[0][1][0] != Bottom || cands[0][1][1] != 0 {
		t.Fatalf("cands[0][1] = %v", cands[0][1])
	}
}

func TestEnumerateChain(t *testing.T) {
	c := chainWRW()
	seen := map[string]bool{}
	n := Enumerate(c, func(o *Observer) bool {
		if err := o.Validate(c); err != nil {
			t.Fatalf("enumerated invalid observer: %v", err)
		}
		k := o.Key()
		if seen[k] {
			t.Fatalf("duplicate observer %s", o)
		}
		seen[k] = true
		return true
	})
	if n != 2 {
		t.Fatalf("observer count = %d, want 2", n)
	}
	if got := Count(c, 0); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestEnumerateEmptyComputation(t *testing.T) {
	c := computation.New(1)
	n := Enumerate(c, func(o *Observer) bool { return true })
	if n != 1 {
		t.Fatalf("empty computation must have exactly one observer, got %d", n)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	c := computation.New(1)
	for i := 0; i < 3; i++ {
		c.AddNode(computation.R(0))
	}
	c.AddNode(computation.W(0))
	// Parallel reads with one incomparable write: each read has 2
	// candidates -> 8 observers.
	visited := 0
	got := Enumerate(c, func(*Observer) bool {
		visited++
		return visited < 3
	})
	if got != 3 {
		t.Fatalf("visited = %d, want 3", got)
	}
}

func TestCountLimit(t *testing.T) {
	c := computation.New(1)
	for i := 0; i < 10; i++ {
		c.AddNode(computation.R(0))
	}
	c.AddNode(computation.W(0))
	// 2^10 = 1024 observers; limit saturates.
	if got := Count(c, 100); got != 100 {
		t.Fatalf("limited count = %d, want 100", got)
	}
	if got := Count(c, 0); got != 1024 {
		t.Fatalf("full count = %d, want 1024", got)
	}
}

// Property: Enumerate visits exactly Count observers, all valid and
// pairwise distinct, and every enumerated observer extends New(c) only
// when it actually equals the canonical minimal one.
func TestQuickEnumerateMatchesCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComputation(rng, 5, 2)
		if Count(c, 2000) >= 2000 {
			return true // skip explosive instances
		}
		seen := map[string]bool{}
		valid := true
		n := Enumerate(c, func(o *Observer) bool {
			if err := o.Validate(c); err != nil {
				valid = false
				return false
			}
			k := o.Key()
			if seen[k] {
				valid = false
				return false
			}
			seen[k] = true
			return true
		})
		return valid && n == Count(c, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every last-writer observer appears in the enumeration
// (W_T is an observer function, Theorem 16, and enumeration is complete).
func TestQuickLastWriterEnumerated(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComputation(rng, 5, 1)
		if Count(c, 3000) >= 3000 {
			return true
		}
		order, err := c.Dag().TopoSort()
		if err != nil {
			return false
		}
		want := FromLastWriter(c, order)
		found := false
		Enumerate(c, func(o *Observer) bool {
			if o.Equal(want) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEnumerateObservers(b *testing.B) {
	c := computation.New(1)
	var nodes []dag.Node
	for i := 0; i < 3; i++ {
		nodes = append(nodes, c.AddNode(computation.W(0)))
	}
	for i := 0; i < 3; i++ {
		nodes = append(nodes, c.AddNode(computation.R(0)))
	}
	_ = nodes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Enumerate(c, func(*Observer) bool { return true })
	}
}

package proccentric

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/trace"
)

func TestComputationShape(t *testing.T) {
	p := StoreBuffering().Program
	c, index := p.Computation()
	if c.NumNodes() != 4 || c.NumLocs() != 2 {
		t.Fatalf("shape: %v", c)
	}
	// Program order edges within each thread, none across.
	if !c.Dag().HasEdge(index[0][0], index[0][1]) || !c.Dag().HasEdge(index[1][0], index[1][1]) {
		t.Fatal("program order edges missing")
	}
	if c.Dag().NumEdges() != 2 {
		t.Fatalf("unexpected cross-thread edges: %v", c.Dag().Edges())
	}
}

func TestTraceConstruction(t *testing.T) {
	l := MessagePassing()
	tr, err := l.Program.Trace(l.Outcome)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Missing outcome errors.
	if _, err := l.Program.Trace(nil); err == nil {
		t.Fatal("missing outcomes accepted")
	}
	// Undefined write value errors.
	bad := Program{NumLocs: 1, Threads: []Thread{{Wr(0, trace.Undefined)}}}
	if _, err := bad.Trace(nil); err == nil {
		t.Fatal("Undefined write accepted")
	}
}

func TestEachInterleavingCount(t *testing.T) {
	// Two threads of 2 instructions: C(4,2) = 6 interleavings.
	p := StoreBuffering().Program
	if got := p.EachInterleaving(func(map[[2]int]trace.Value) bool { return true }); got != 6 {
		t.Fatalf("interleavings = %d, want 6", got)
	}
	// Early stop.
	n := 0
	p.EachInterleaving(func(map[[2]int]trace.Value) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

// The litmus suite: every outcome's SC and LC classification must match
// the computation-centric checkers.
func TestLitmusSuite(t *testing.T) {
	for _, l := range All() {
		tr, err := l.Program.Trace(l.Outcome)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if got := checker.VerifySC(tr).OK; got != l.AllowSC {
			t.Errorf("%s: SC = %v, want %v (%s)", l.Name, got, l.AllowSC, l.Comment)
		}
		if got := checker.VerifyLC(tr).OK; got != l.AllowLC {
			t.Errorf("%s: LC = %v, want %v (%s)", l.Name, got, l.AllowLC, l.Comment)
		}
		// Lamport's interleaving semantics must agree with the SC
		// verdict on processor-centric programs (Section 4).
		if got := l.Program.LamportAllows(l.Outcome); got != l.AllowSC {
			t.Errorf("%s: Lamport = %v, want %v", l.Name, got, l.AllowSC)
		}
	}
}

// Section 4's generalization claim, brute-forced: for random
// straight-line programs and random read outcomes, the
// computation-centric SC checker and direct interleaving simulation
// agree exactly.
func TestQuickSCEqualsLamport(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numLocs := 1 + rng.Intn(2)
		nThreads := 1 + rng.Intn(3)
		p := Program{NumLocs: numLocs}
		writeVals := []trace.Value{1, 2}
		var reads [][2]int
		for t := 0; t < nThreads; t++ {
			var th Thread
			for i := 0; i < 1+rng.Intn(3); i++ {
				l := computation.Loc(rng.Intn(numLocs))
				if rng.Intn(2) == 0 {
					th = append(th, Wr(l, writeVals[rng.Intn(len(writeVals))]))
				} else {
					th = append(th, Rd(l))
					reads = append(reads, [2]int{t, i})
				}
			}
			p.Threads = append(p.Threads, th)
		}
		// Random outcome assignment.
		outcome := make(map[[2]int]trace.Value)
		for _, r := range reads {
			switch rng.Intn(3) {
			case 0:
				outcome[r] = trace.Undefined
			default:
				outcome[r] = writeVals[rng.Intn(len(writeVals))]
			}
		}
		tr, err := p.Trace(outcome)
		if err != nil {
			return false
		}
		return checker.VerifySC(tr).OK == p.LamportAllows(outcome)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// LC is weaker than SC on processor-centric programs too: every
// Lamport-allowed outcome is LC-explainable.
func TestQuickLamportImpliesLC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Program{
			NumLocs: 2,
			Threads: []Thread{
				{Wr(0, 1), Rd(1), Rd(0)},
				{Wr(1, 2), Rd(0), Rd(1)},
			},
		}
		// Sample a genuine interleaving outcome.
		var outcomes []map[[2]int]trace.Value
		p.EachInterleaving(func(o map[[2]int]trace.Value) bool {
			cp := make(map[[2]int]trace.Value, len(o))
			for k, v := range o {
				cp[k] = v
			}
			outcomes = append(outcomes, cp)
			return true
		})
		o := outcomes[rng.Intn(len(outcomes))]
		tr, err := p.Trace(o)
		if err != nil {
			return false
		}
		return checker.VerifySC(tr).OK && checker.VerifyLC(tr).OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package proccentric

import "repro/internal/trace"

// Litmus is a named program with a distinguished outcome and its
// classification: whether the outcome is allowed under sequential
// consistency and under location consistency (coherence). The
// classifications are the standard ones from the memory-model
// literature; the tests machine-check all of them against the paper's
// computation-centric model definitions.
type Litmus struct {
	Name    string
	Program Program
	Outcome map[[2]int]trace.Value
	AllowSC bool
	AllowLC bool
	Comment string
}

// StoreBuffering is SB (Dekker): both threads write their flag and then
// read the other's, both reads returning the initial value. Forbidden
// under SC, allowed under LC — the separation of Section 4.
func StoreBuffering() Litmus {
	const x, y = 0, 1
	return Litmus{
		Name: "SB",
		Program: Program{
			NumLocs: 2,
			Threads: []Thread{
				{Wr(x, 1), Rd(y)},
				{Wr(y, 1), Rd(x)},
			},
		},
		Outcome: map[[2]int]trace.Value{
			{0, 1}: trace.Undefined,
			{1, 1}: trace.Undefined,
		},
		AllowSC: false,
		AllowLC: true,
		Comment: "store buffering / Dekker: both reads miss both writes",
	}
}

// MessagePassing is MP: a producer writes data then a flag; a consumer
// sees the flag but stale data. Forbidden under SC, allowed under LC
// (coherence gives no cross-location ordering).
func MessagePassing() Litmus {
	const data, flag = 0, 1
	return Litmus{
		Name: "MP",
		Program: Program{
			NumLocs: 2,
			Threads: []Thread{
				{Wr(data, 1), Wr(flag, 1)},
				{Rd(flag), Rd(data)},
			},
		},
		Outcome: map[[2]int]trace.Value{
			{1, 0}: 1,               // flag observed
			{1, 1}: trace.Undefined, // data stale
		},
		AllowSC: false,
		AllowLC: true,
		Comment: "message passing: flag visible before data",
	}
}

// LoadBuffering is LB: each thread reads the location the other thread
// writes afterwards, both reads returning the written values. Forbidden
// under SC (the reads would have to precede their own causes), allowed
// under LC.
func LoadBuffering() Litmus {
	const x, y = 0, 1
	return Litmus{
		Name: "LB",
		Program: Program{
			NumLocs: 2,
			Threads: []Thread{
				{Rd(y), Wr(x, 1)},
				{Rd(x), Wr(y, 1)},
			},
		},
		Outcome: map[[2]int]trace.Value{
			{0, 0}: 1,
			{1, 0}: 1,
		},
		AllowSC: false,
		AllowLC: true,
		Comment: "load buffering: both loads see the other thread's later store",
	}
}

// CoherenceRR is CoRR: one thread reads the same location twice and
// sees a write, then the initial value. Forbidden under both SC and LC
// — this is the guarantee location consistency does give.
func CoherenceRR() Litmus {
	const x = 0
	return Litmus{
		Name: "CoRR",
		Program: Program{
			NumLocs: 1,
			Threads: []Thread{
				{Wr(x, 1)},
				{Rd(x), Rd(x)},
			},
		},
		Outcome: map[[2]int]trace.Value{
			{1, 0}: 1,
			{1, 1}: trace.Undefined,
		},
		AllowSC: false,
		AllowLC: false,
		Comment: "read-read coherence: a location's writes cannot un-happen",
	}
}

// CoherenceWW is CoWW-style: two writes to one location by different
// threads observed in opposite orders by two readers. Forbidden under
// both SC and LC (a single serialization per location must pick one
// order), allowed by weaker dag-consistent models.
func CoherenceWW() Litmus {
	const x = 0
	return Litmus{
		Name: "CoWW",
		Program: Program{
			NumLocs: 1,
			Threads: []Thread{
				{Wr(x, 1)},
				{Wr(x, 2)},
				{Rd(x), Rd(x)}, // sees 1 then 2
				{Rd(x), Rd(x)}, // sees 2 then 1
			},
		},
		Outcome: map[[2]int]trace.Value{
			{2, 0}: 1, {2, 1}: 2,
			{3, 0}: 2, {3, 1}: 1,
		},
		AllowSC: false,
		AllowLC: false,
		Comment: "write serialization: readers must agree on the write order per location",
	}
}

// IRIW is independent reads of independent writes: two writers to two
// different locations; two readers observe them in opposite orders.
// Forbidden under SC, allowed under LC (no cross-location agreement).
func IRIW() Litmus {
	const x, y = 0, 1
	return Litmus{
		Name: "IRIW",
		Program: Program{
			NumLocs: 2,
			Threads: []Thread{
				{Wr(x, 1)},
				{Wr(y, 1)},
				{Rd(x), Rd(y)}, // x new, y old
				{Rd(y), Rd(x)}, // y new, x old
			},
		},
		Outcome: map[[2]int]trace.Value{
			{2, 0}: 1, {2, 1}: trace.Undefined,
			{3, 0}: 1, {3, 1}: trace.Undefined,
		},
		AllowSC: false,
		AllowLC: true,
		Comment: "independent reads of independent writes: readers disagree on write order across locations",
	}
}

// SBAllowed is the store-buffering program with a benign outcome (one
// read hits, one misses), allowed by every model considered.
func SBAllowed() Litmus {
	l := StoreBuffering()
	l.Name = "SB-allowed"
	l.Outcome = map[[2]int]trace.Value{
		{0, 1}: 1,
		{1, 1}: trace.Undefined,
	}
	l.AllowSC = true
	l.AllowLC = true
	l.Comment = "store buffering, benign outcome"
	return l
}

// All returns the litmus suite.
func All() []Litmus {
	return []Litmus{
		StoreBuffering(), MessagePassing(), LoadBuffering(),
		CoherenceRR(), CoherenceWW(), IRIW(), SBAllowed(),
	}
}

// Package proccentric bridges the paper's computation-centric world to
// the traditional processor-centric one (Sections 1, 4 and 7): a
// multiprocessor program is a set of per-processor instruction
// sequences, and its computation is the dag with one chain per
// processor and no cross-processor edges.
//
// On such computations the paper's SC (Definition 17) coincides with
// Lamport's sequential consistency — "the result of any execution is
// the same as if the operations of all the processors were executed in
// some sequential order, and the operations of each individual
// processor appear in this sequence in the order specified by its
// program" — because the topological sorts of a union of chains are
// exactly the program-order-respecting interleavings. The tests verify
// this by brute force: enumerating interleavings and executing them
// against a flat memory gives the same verdicts as the checker.
//
// The package also carries the classic litmus tests (store buffering,
// message passing, load buffering, coherence, IRIW) with their SC/LC
// classifications.
package proccentric

import (
	"fmt"

	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/trace"
)

// Program is a processor-centric shared-memory program: per-processor
// straight-line instruction sequences over NumLocs locations, with
// values attached to writes.
type Program struct {
	NumLocs int
	Threads []Thread
}

// Thread is one processor's instruction sequence.
type Thread []Instr

// Instr is one instruction with its value: the value stored for a
// write; ignored for reads and no-ops.
type Instr struct {
	Op    computation.Op
	Value trace.Value
}

// Wr returns a write instruction storing v.
func Wr(l computation.Loc, v trace.Value) Instr {
	return Instr{Op: computation.W(l), Value: v}
}

// Rd returns a read instruction.
func Rd(l computation.Loc) Instr { return Instr{Op: computation.R(l)} }

// Computation converts the program to its computation: one chain per
// thread. The returned index maps [thread][position] to the node id.
func (p Program) Computation() (*computation.Computation, [][]dag.Node) {
	c := computation.New(p.NumLocs)
	index := make([][]dag.Node, len(p.Threads))
	for t, th := range p.Threads {
		index[t] = make([]dag.Node, len(th))
		var prev dag.Node = dag.None
		for i, ins := range th {
			u := c.AddNode(ins.Op)
			index[t][i] = u
			if prev != dag.None {
				c.MustAddEdge(prev, u)
			}
			prev = u
		}
	}
	return c, index
}

// Trace builds the execution trace for the program with the given read
// outcomes: readVals[t][i] is the value returned by the i-th
// instruction of thread t when it is a read (other entries ignored).
// Use trace.Undefined for a read of uninitialized memory.
func (p Program) Trace(readVals map[[2]int]trace.Value) (*trace.Trace, error) {
	c, index := p.Computation()
	tr := trace.New(c)
	for t, th := range p.Threads {
		for i, ins := range th {
			u := index[t][i]
			switch ins.Op.Kind {
			case computation.Write:
				if ins.Value == trace.Undefined {
					return nil, fmt.Errorf("proccentric: thread %d op %d writes Undefined", t, i)
				}
				tr.WriteVal[u] = ins.Value
			case computation.Read:
				v, ok := readVals[[2]int{t, i}]
				if !ok {
					return nil, fmt.Errorf("proccentric: no outcome for read at thread %d op %d", t, i)
				}
				tr.ReadVal[u] = v
			}
		}
	}
	return tr, nil
}

// EachInterleaving enumerates every program-order-respecting
// interleaving of the program's instructions, executing each against a
// flat last-value memory and reporting the read outcomes. This is
// Lamport's semantics by direct simulation; fn receives the outcome
// map (keyed by [thread, position]) and may return false to stop.
// Returns the number of interleavings visited.
func (p Program) EachInterleaving(fn func(outcome map[[2]int]trace.Value) bool) int {
	pos := make([]int, len(p.Threads))
	mem := make([]trace.Value, p.NumLocs)
	init := make([]bool, p.NumLocs)
	outcome := make(map[[2]int]trace.Value)
	visited := 0
	stopped := false

	var rec func()
	rec = func() {
		if stopped {
			return
		}
		done := true
		for t := range p.Threads {
			if pos[t] < len(p.Threads[t]) {
				done = false
				break
			}
		}
		if done {
			visited++
			if !fn(outcome) {
				stopped = true
			}
			return
		}
		for t := range p.Threads {
			i := pos[t]
			if i >= len(p.Threads[t]) {
				continue
			}
			ins := p.Threads[t][i]
			var savedVal trace.Value
			var savedInit bool
			var savedOut trace.Value
			var hadOut bool
			key := [2]int{t, i}
			switch ins.Op.Kind {
			case computation.Write:
				savedVal, savedInit = mem[ins.Op.Loc], init[ins.Op.Loc]
				mem[ins.Op.Loc], init[ins.Op.Loc] = ins.Value, true
			case computation.Read:
				savedOut, hadOut = outcome[key]
				if init[ins.Op.Loc] {
					outcome[key] = mem[ins.Op.Loc]
				} else {
					outcome[key] = trace.Undefined
				}
			}
			pos[t]++
			rec()
			pos[t]--
			switch ins.Op.Kind {
			case computation.Write:
				mem[ins.Op.Loc], init[ins.Op.Loc] = savedVal, savedInit
			case computation.Read:
				if hadOut {
					outcome[key] = savedOut
				} else {
					delete(outcome, key)
				}
			}
			if stopped {
				return
			}
		}
	}
	rec()
	return visited
}

// LamportAllows reports whether some interleaving produces exactly the
// given read outcomes — sequential consistency by direct simulation.
func (p Program) LamportAllows(readVals map[[2]int]trace.Value) bool {
	allowed := false
	p.EachInterleaving(func(outcome map[[2]int]trace.Value) bool {
		for k, v := range readVals {
			if outcome[k] != v {
				return true // keep searching
			}
		}
		allowed = true
		return false
	})
	return allowed
}

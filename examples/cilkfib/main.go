// Cilkfib: the end-to-end story of the paper's introduction. A
// fork/join (Cilk-style) divide-and-conquer program unfolds into a
// computation, runs on a simulated multiprocessor under randomized
// work stealing with the BACKER coherence protocol, and computes the
// right answer on every processor count — because BACKER maintains
// location consistency and the program writes each result cell once
// before syncing on it. Disable the coherence protocol and the program
// computes garbage, which the post-mortem checker flags.
//
// Run with: go run ./examples/cilkfib
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/backer"
	"repro/internal/checker"
	"repro/internal/cilk"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/sched"
	"repro/internal/trace"
)

// fib builds the canonical program: each task allocates cells for its
// children, spawns them, syncs, and writes the sum of their results.
func fib(n int) (*cilk.Program, computation.Loc) {
	var out computation.Loc
	var build func(t *cilk.Thread, res computation.Loc, k int)
	build = func(t *cilk.Thread, res computation.Loc, k int) {
		if k < 2 {
			t.Write(res, cilk.Const(trace.Value(k)))
			return
		}
		l1, l2 := t.AllocLoc(), t.AllocLoc()
		t.Spawn(func(c *cilk.Thread) { build(c, l1, k-1) })
		t.Spawn(func(c *cilk.Thread) { build(c, l2, k-2) })
		t.Sync()
		r1, r2 := t.Read(l1), t.Read(l2)
		t.Write(res, func(env *cilk.Env) trace.Value {
			return env.Value(r1) + env.Value(r2)
		})
	}
	p := cilk.New(0, func(t *cilk.Thread) {
		out = t.AllocLoc()
		build(t, out, n)
	})
	return p, out
}

func result(p *cilk.Program, out computation.Loc, res *cilk.Result) trace.Value {
	c := p.Computation()
	var v trace.Value
	for u := 0; u < c.NumNodes(); u++ {
		if c.Op(dag.Node(u)).IsWriteTo(out) {
			v = res.WriteVal[dag.Node(u)]
		}
	}
	return v
}

func main() {
	const n = 12
	rng := rand.New(rand.NewSource(99))
	p, out := fib(n)
	c := p.Computation()
	fmt.Printf("fib(%d) unfolds into %d nodes over %d locations (T1=%d, T∞=%d)\n",
		n, c.NumNodes(), c.NumLocs(), sched.Work(c, nil), sched.Span(c, nil))

	fmt.Println("\nwith BACKER coherence:")
	for _, P := range []int{1, 2, 4, 8, 16} {
		res, err := cilk.Execute(p, P, rng, nil)
		check(err)
		lc := checker.VerifyLC(res.Backer.Trace).OK
		fmt.Printf("  P=%-2d makespan=%-5d steals=%-4d fib=%-6v LC=%v\n",
			P, res.Schedule.Makespan, res.Schedule.Steals, result(p, out, res), lc)
	}

	fmt.Println("\nwith the coherence protocol sabotaged (90% of steps skipped):")
	for trial := 0; trial < 5; trial++ {
		faults := &backer.Faults{SkipReconcile: 0.9, SkipFlush: 0.9, Rng: rng}
		res, err := cilk.Execute(p, 8, rng, faults)
		check(err)
		lc := checker.VerifyLC(res.Backer.Trace).OK
		fmt.Printf("  trial %d: fib=%-8v LC=%v\n", trial+1, result(p, out, res), lc)
	}
	fmt.Printf("\n(correct answer: %d — the checker flags exactly the broken runs)\n", fibIter(n))
}

func fibIter(n int) trace.Value {
	a, b := trace.Value(0), trace.Value(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// check aborts the example on a simulator error (invalid parameters).
func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cilkfib:", err)
		os.Exit(1)
	}
}

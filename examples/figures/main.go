// Figures: machine-check Figures 2, 3 and 4 of the paper plus the
// SC/LC separation of Section 4.
//
//   - Figure 2: a pair in WW and NW but not in WN or NN (the anomaly
//     that motivated strengthening WW-dag consistency);
//   - Figure 3: its mirror image, in WW and WN but not in NW or NN;
//   - Figure 4: the prefix that proves NN is not constructible — its
//     observer function is in NN but cannot be extended when a
//     non-writing node is appended;
//   - Dekker: the two-location computation showing SC ⊊ LC.
//
// Run with: go run ./examples/figures
package main

import (
	"fmt"

	ccm "repro"
	"repro/internal/computation"
	"repro/internal/memmodel"
	"repro/internal/paperfig"
)

func main() {
	for _, fx := range []paperfig.Fixture{
		paperfig.Figure2(),
		paperfig.Figure3(),
		paperfig.Dekker(),
	} {
		fmt.Printf("%s\n  %v\n  %v\n", fx.Name, fx.Comp, fx.Obs)
		checkMemberships(fx)
		fmt.Println()
	}
	figure4()
}

func checkMemberships(fx paperfig.Fixture) {
	for _, name := range fx.InModels {
		m, _ := modelByName(name)
		status := "FAIL"
		if m.Contains(fx.Comp, fx.Obs) {
			status = "ok"
		}
		fmt.Printf("  in  %-3s %s\n", name, status)
	}
	for _, name := range fx.OutModels {
		m, _ := modelByName(name)
		status := "FAIL"
		if !m.Contains(fx.Comp, fx.Obs) {
			status = "ok"
		}
		fmt.Printf("  out %-3s %s\n", name, status)
	}
}

func figure4() {
	fx := paperfig.Figure4()
	fmt.Println("Figure4 (NN is not constructible)")
	fmt.Printf("  prefix: %v\n  Φ:      %v\n", fx.Prefix, fx.PrefixObs)
	fmt.Printf("  prefix pair in NN: %v (expected true)\n", ccm.NN.Contains(fx.Prefix, fx.PrefixObs))
	fmt.Printf("  prefix pair in LC: %v (expected false — LC ⊊ NN needs this witness)\n",
		ccm.LC.Contains(fx.Prefix, fx.PrefixObs))

	ops := []computation.Op{computation.N, computation.R(0), computation.W(0)}
	for _, op := range ops {
		ext, _ := fx.Extend(op)
		ok := memmodel.CanExtend(memmodel.NN, fx.Prefix, fx.PrefixObs, ext)
		fmt.Printf("  extend by final %-5s: extension exists = %v\n", op, ok)
	}
	fmt.Println("  => Φ extends only when the new node writes: NN is not constructible.")
}

func modelByName(name string) (ccm.Model, bool) {
	for _, m := range []ccm.Model{ccm.SC, ccm.LC, ccm.NN, ccm.NW, ccm.WN, ccm.WW} {
		if m.Name() == name {
			return m, true
		}
	}
	return nil, false
}

// Backer: run the BACKER coherence algorithm (Cilk's distributed shared
// memory) on a simulated multiprocessor executing a divide-and-conquer
// computation, then verify post mortem that the execution was location
// consistent — the property [Luc97] proves and Section 7 of the paper
// relies on. Finally, break the protocol on purpose and watch the
// checker catch it.
//
// Run with: go run ./examples/backer
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/backer"
	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/sched"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A Cilk-style spawn tree whose nodes read and write two shared
	// locations.
	g := dag.SpawnTree(6)
	ops := make([]computation.Op, g.NumNodes())
	for i := range ops {
		l := computation.Loc(rng.Intn(2))
		switch rng.Intn(3) {
		case 0:
			ops[i] = computation.W(l)
		default:
			ops[i] = computation.R(l)
		}
	}
	c := computation.MustFrom(g, ops, 2)
	fmt.Printf("computation: %d nodes, T1=%d, T∞=%d\n",
		c.NumNodes(), sched.Work(c, nil), sched.Span(c, nil))

	for _, P := range []int{1, 2, 4, 8} {
		s, err := sched.WorkStealing(c, P, nil, rng)
		check(err)
		res, err := backer.Run(s, nil)
		check(err)
		lc := checker.VerifyLC(res.Trace)
		// SC verification is NP-complete; try the execution order as a
		// witness first, then a budgeted search.
		sc := "true"
		if !checker.OrderExplains(res.Trace, s.Order) {
			if r, exhaustive := checker.VerifySCBudget(res.Trace, 200000); r.OK {
				sc = "true"
			} else if exhaustive {
				sc = "false"
			} else {
				sc = "unknown"
			}
		}
		fmt.Printf("P=%d: makespan=%3d steals=%2d flushes=%3d fetches=%3d  LC=%v SC=%s\n",
			P, s.Makespan, s.Steals, res.Stats.Flushes, res.Stats.Fetches, lc.OK, sc)
		if !lc.OK {
			fmt.Println("ERROR: healthy BACKER must maintain location consistency")
			return
		}
	}

	// Fault injection: skip most reconciles and flushes.
	fmt.Println("\nfault injection (60% of protocol steps skipped):")
	detected := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		s, err := sched.WorkStealing(c, 4, nil, rng)
		check(err)
		faults := &backer.Faults{SkipReconcile: 0.6, SkipFlush: 0.6, Rng: rng}
		res, err := backer.Run(s, faults)
		check(err)
		if !checker.VerifyLC(res.Trace).OK {
			detected++
		}
	}
	fmt.Printf("checker flagged %d/%d faulty executions as LC violations\n", detected, trials)
}

// check aborts the example on a simulator error (invalid parameters).
func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "backer example:", err)
		os.Exit(1)
	}
}

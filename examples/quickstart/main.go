// Quickstart: build a computation, attach an observer function, and ask
// which memory models of Frigo & Luchangco (SPAA 1998) accept it.
//
// The computation is the paper's running shape: a fork/join diamond on
// one memory location, where a write forks into two parallel readers
// that join into a final read.
//
//	        ┌─> B: R(x) ─┐
//	A: W(x) ┤            ├─> D: R(x)
//	        └─> C: R(x) ─┘
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	ccm "repro"
)

func main() {
	// One memory location, x = location 0.
	c := ccm.NewComputation(1)
	a := c.AddNode(ccm.W(0))
	b := c.AddNode(ccm.R(0))
	cc := c.AddNode(ccm.R(0))
	d := c.AddNode(ccm.R(0))
	c.MustAddEdge(a, b)
	c.MustAddEdge(a, cc)
	c.MustAddEdge(b, d)
	c.MustAddEdge(cc, d)

	fmt.Println("computation:", c)

	// Observer 1: everything observes the write — the intuitive outcome.
	phi := ccm.NewObserver(c)
	phi.Set(0, b, a)
	phi.Set(0, cc, a)
	phi.Set(0, d, a)
	report("all reads observe A", c, phi)

	// Observer 2: the middle readers observe A, but the final read
	// observes ⊥ — it "forgot" the write. SC, LC, NN and NW reject this
	// (the triple ⊥ ≺ B ≺ D violates Condition 20.1 with Φ(⊥) = Φ(D) =
	// ⊥), but WN and WW tolerate it because ⊥ is not a write: exactly
	// the anomaly class that motivated strengthening dag consistency.
	forget := ccm.NewObserver(c)
	forget.Set(0, b, a)
	forget.Set(0, cc, a)
	report("final read forgets the write", c, forget)

	// Observer 3: B and D observe A but C observes ⊥ even though it
	// follows A. Only WW tolerates this: the triple A ≺ C ≺ D (stale
	// middle read) is caught by NN and WN, the triple ⊥ ≺ A ≺ C (a
	// write lost before C) is caught by NN and NW, and the serializing
	// models reject a ⊥ read past a preceding write outright. WW needs
	// both endpoints of some triple to write, which never happens here.
	split := ccm.NewObserver(c)
	split.Set(0, b, a)
	split.Set(0, d, a)
	report("one reader misses the write", c, split)
}

func report(title string, c *ccm.Computation, phi *ccm.Observer) {
	fmt.Printf("\n%s:\n  %v\n  ", title, phi)
	for _, m := range []ccm.Model{ccm.SC, ccm.LC, ccm.NN, ccm.NW, ccm.WN, ccm.WW} {
		mark := "✗"
		if m.Contains(c, phi) {
			mark = "✓"
		}
		fmt.Printf("%s:%s  ", m.Name(), mark)
	}
	fmt.Println()
}

// Locking: the paper's Section 7 future-work direction, demonstrated.
// Augmenting the Dekker computation with a mutex (both branches become
// critical sections of one lock) excludes the relaxed outcome even
// under weak memory — provided the base model serializes locations:
//
//   - plain LC allows the both-reads-stale anomaly;
//   - Locked(LC) forbids it, and in fact every Locked(LC) behavior of
//     the race-free program is sequentially consistent;
//   - Locked(WW) still allows it: dag consistency alone is too weak
//     for mutual exclusion to restore SC.
//
// Run with: go run ./examples/locking
package main

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/memmodel"
	"repro/internal/observer"
	"repro/internal/paperfig"
)

func main() {
	fx := paperfig.Dekker()
	c := fx.Comp
	discipline := locks.Discipline{
		0: {
			{Acquire: 0, Release: 1}, // W(x); R(y)
			{Acquire: 2, Release: 3}, // W(y); R(x)
		},
	}

	fmt.Println("Dekker:", c)
	fmt.Println("anomalous observer (both reads stale):", fx.Obs)
	fmt.Println()

	models := []memmodel.Model{
		memmodel.SC,
		memmodel.LC,
		locks.Locked(memmodel.LC, discipline),
		locks.Locked(memmodel.WW, discipline),
		locks.Locked(memmodel.NN, discipline),
	}
	for _, m := range models {
		fmt.Printf("  %-12s allows the anomaly: %v\n", m.Name(), m.Contains(c, fx.Obs))
	}

	// Exhaustive mini-DRF check: Locked(LC) ⊆ SC on this program.
	lockedLC := locks.Locked(memmodel.LC, discipline)
	total, locked, sc := 0, 0, 0
	observer.Enumerate(c, func(o *observer.Observer) bool {
		total++
		if lockedLC.Contains(c, o) {
			locked++
			if memmodel.SC.Contains(c, o) {
				sc++
			}
		}
		return true
	})
	fmt.Printf("\nof %d observer functions: %d in Locked(LC), all %d of them in SC\n",
		total, locked, sc)
	if locked == sc {
		fmt.Println("=> the locked program is data-race-free, and Locked(LC) behaves like SC")
	}
}

// Litmus: run the classic shared-memory litmus tests (store buffering,
// message passing, load buffering, coherence, IRIW) through the
// computation-centric checkers, and cross-validate the SC verdicts
// against Lamport's interleaving semantics by direct simulation —
// demonstrating the paper's Section 4 claim that computation-centric
// SC generalizes the traditional processor-centric definition.
//
// Run with: go run ./examples/litmus
package main

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/proccentric"
)

func main() {
	fmt.Printf("%-12s %-8s %-8s %-10s %s\n", "litmus", "SC", "LC", "Lamport", "comment")
	for _, l := range proccentric.All() {
		tr, err := l.Program.Trace(l.Outcome)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		sc := checker.VerifySC(tr).OK
		lc := checker.VerifyLC(tr).OK
		lamport := l.Program.LamportAllows(l.Outcome)
		status := ""
		if sc != l.AllowSC || lc != l.AllowLC || lamport != sc {
			status = "  <-- MISMATCH"
		}
		fmt.Printf("%-12s %-8v %-8v %-10v %s%s\n", l.Name, sc, lc, lamport, l.Comment, status)
	}
	fmt.Println("\nSC verdicts agree with direct interleaving simulation (Section 4);")
	fmt.Println("LC permits exactly the relaxed outcomes coherence allows.")
}

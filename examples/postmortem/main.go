// Postmortem: after-the-fact analysis of a broken execution, in the
// style of Gibbons & Korach ([GK94], cited in the paper) — but instead
// of a hand-built value trace, the evidence is a *shrunk chaos
// artifact*: the chaos harness explores fault plans against a BACKER
// run, shrinks the first LC violation to a locally minimal repro,
// writes it to disk, and the "postmortem team" loads the bundle back
// with no memory of how it was produced, replays it, and classifies
// the broken trace against the paper's model lattice.
//
// Run with: go run ./examples/postmortem
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/chaos"
	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/sched"
)

func main() {
	ctx := context.Background()

	// ------------------------------------------------------------------
	// Incident: a stale-read computation under BACKER with one injected
	// fault. A and C read x on p0; B writes x on p1; the edge B -> C
	// crosses processors, so healthy BACKER reconciles p1's cache before
	// C runs — C must see B's write.
	// ------------------------------------------------------------------
	named, err := computation.ParseString(`
locs x
node A R(x)
node B W(x)
node C R(x)
edge A C
edge B C
`)
	check(err)
	s, err := sched.ListSchedule(named.Comp, 2, nil)
	check(err)

	// Explore only genuine protocol faults (not value corruption): the
	// interesting violations are the ones where every individual value
	// is legitimate but the coherence protocol lost an update.
	rep, err := chaos.Explore(ctx, s, chaos.Options{
		Depth:       1,
		StopAtFirst: true,
		Kinds:       []chaos.Kind{chaos.SkipReconcile, chaos.DelayReconcile, chaos.SkipFlush},
	})
	check(err)
	if len(rep.Violations) == 0 {
		fmt.Println("no violation found — nothing to analyse")
		return
	}
	found := rep.Violations[0]
	fmt.Printf("exploration found an LC violation after %d plans:\n%s\n", rep.Explored, found.Plan)

	// Shrink it to a locally minimal repro and write the artifact.
	repro, err := chaos.Shrink(ctx, s, found.Plan, checker.SearchOptions{})
	check(err)
	class := chaos.Classify(ctx, repro.Result.Trace, checker.SearchOptions{}, 0)
	dir, err := os.MkdirTemp("", "chaos-artifact-")
	check(err)
	defer os.RemoveAll(dir)
	check(chaos.WriteArtifact(dir, repro, class))
	fmt.Printf("shrunk to %d event(s) on %d node(s); artifact in %s\n\n",
		repro.Plan.Len(), repro.Sched.Comp.NumNodes(), dir)

	// ------------------------------------------------------------------
	// Postmortem: load the bundle from disk — plan, schedule (with its
	// computation inline) and the recorded value trace — replay it, and
	// ask which memory models still explain the broken execution.
	// ------------------------------------------------------------------
	art, err := chaos.LoadArtifact(dir)
	check(err)
	fmt.Printf("loaded artifact: %d-node computation, P=%d, plan:\n%s",
		art.Sched.Comp.NumNodes(), art.Sched.P, art.Plan)

	res, match, err := art.Replay()
	check(err)
	fmt.Printf("replay reproduces the recorded trace: %v\n", match)
	fmt.Printf("trace: %v\n\n", res.Trace)

	fmt.Println("model lattice classification of the broken trace:")
	for _, mv := range chaos.Classify(ctx, art.Trace, checker.SearchOptions{}, 0) {
		fmt.Printf("  %-3s %v\n", mv.Model+":", mv.Verdict)
	}
	fmt.Println("\nthe repro is 1-minimal: the one fault in the plan is the whole")
	fmt.Println("explanation, and BACKER's coherence guarantee [Luc97] fails with it.")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "postmortem:", err)
		os.Exit(1)
	}
}

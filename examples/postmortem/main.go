// Postmortem: verify executed value traces against memory models, in
// the style of Gibbons & Korach's after-the-fact analysis ([GK94],
// cited in the paper). A trace fixes what every write stored and every
// read returned; verification asks whether some observer function in a
// model explains it.
//
// Run with: go run ./examples/postmortem
package main

import (
	"fmt"

	ccm "repro"
	"repro/internal/checker"
	"repro/internal/memmodel"
	"repro/internal/trace"
)

func main() {
	// Two threads over two shared locations x (0) and y (1):
	//
	//	thread 1: W(x)=1 ; R(y)      thread 2: W(y)=2 ; R(x)
	//
	// The classic litmus test: can both reads return the initial value?
	c := ccm.NewComputation(2)
	wx := c.AddNode(ccm.W(0))
	ry := c.AddNode(ccm.R(1))
	wy := c.AddNode(ccm.W(1))
	rx := c.AddNode(ccm.R(0))
	c.MustAddEdge(wx, ry)
	c.MustAddEdge(wy, rx)

	tr := trace.New(c)
	tr.WriteVal[wx] = 1
	tr.WriteVal[wy] = 2

	outcomes := []struct {
		name   string
		ry, rx trace.Value
	}{
		{"both reads see the writes", 2, 1},
		{"r(y) stale, r(x) fresh", trace.Undefined, 1},
		{"both reads stale (Dekker anomaly)", trace.Undefined, trace.Undefined},
	}
	for _, oc := range outcomes {
		tr.ReadVal[ry] = oc.ry
		tr.ReadVal[rx] = oc.rx
		scRes := checker.VerifySC(tr)
		lcRes := checker.VerifyLC(tr)
		nnRes, _ := checker.VerifyModel(memmodel.NN, tr, 0)
		fmt.Printf("%-36s SC=%v LC=%v NN=%v\n", oc.name, scRes.OK, lcRes.OK, nnRes.OK)
	}

	// A value no write ever stored is inexplicable under any model.
	tr.ReadVal[ry] = 99
	tr.ReadVal[rx] = 1
	fmt.Printf("%-36s SC=%v LC=%v (out-of-thin-air value)\n",
		"r(y) returns 99", checker.VerifySC(tr).OK, checker.VerifyLC(tr).OK)

	// Witnesses: the checker returns an explaining observer function.
	tr.ReadVal[ry] = trace.Undefined
	tr.ReadVal[rx] = trace.Undefined
	if res := checker.VerifyLC(tr); res.OK {
		fmt.Printf("\nLC witness for the Dekker anomaly:\n  %v\n", res.Observer)
	}
}

package ccm

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checker"
	"repro/internal/memmodel"
	"repro/internal/observer"
	"repro/internal/paperfig"
	"repro/internal/trace"
)

// Integration: the testdata pair files (the same files cmd/ccmc
// consumes) parse, validate, and carry exactly the memberships the
// paper claims for the corresponding figures.
func TestTestdataFigures(t *testing.T) {
	cases := []struct {
		file    string
		in, out []string
	}{
		{"figure2.ccm", []string{"WW", "NW"}, []string{"WN", "NN", "LC", "SC"}},
		{"figure3.ccm", []string{"WW", "WN"}, []string{"NW", "NN", "LC", "SC"}},
		{"figure4_prefix.ccm", []string{"NN", "NW", "WN", "WW"}, []string{"LC", "SC"}},
		{"dekker.ccm", []string{"LC", "NN", "WW"}, []string{"SC"}},
	}
	models := map[string]Model{
		"SC": SC, "LC": LC, "NN": NN, "NW": NW, "WN": WN, "WW": WW,
	}
	for _, tc := range cases {
		f, err := os.Open(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		named, obs, err := observer.ParsePair(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		for _, name := range tc.in {
			if !models[name].Contains(named.Comp, obs) {
				t.Errorf("%s: expected IN %s", tc.file, name)
			}
		}
		for _, name := range tc.out {
			if models[name].Contains(named.Comp, obs) {
				t.Errorf("%s: expected NOT in %s", tc.file, name)
			}
		}
	}
}

// The testdata figure files must denote the same pairs as the
// programmatic fixtures in internal/paperfig (up to node numbering,
// which both use identically).
func TestTestdataMatchesFixtures(t *testing.T) {
	check := func(file string, comp interface{ String() string }, obsKey string) {
		f, err := os.Open(filepath.Join("testdata", file))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		named, obs, err := observer.ParsePair(f)
		if err != nil {
			t.Fatal(err)
		}
		if named.Comp.String() != comp.String() {
			t.Errorf("%s: computation %s != fixture %s", file, named.Comp, comp)
		}
		if obs.Key() != obsKey {
			t.Errorf("%s: observer differs from fixture", file)
		}
	}
	fig2 := paperfig.Figure2()
	check("figure2.ccm", fig2.Comp, fig2.Obs.Key())
	fig3 := paperfig.Figure3()
	check("figure3.ccm", fig3.Comp, fig3.Obs.Key())
	fig4 := paperfig.Figure4()
	check("figure4_prefix.ccm", fig4.Prefix, fig4.PrefixObs.Key())
	dek := paperfig.Dekker()
	check("dekker.ccm", dek.Comp, dek.Obs.Key())
}

// The testdata trace files (the same files cmd/verify consumes) parse
// and classify as documented in their headers.
func TestTestdataTraces(t *testing.T) {
	cases := []struct {
		file             string
		allowSC, allowLC bool
	}{
		{"mp_stale.trace", false, true},
		{"corr_violation.trace", false, false},
	}
	for _, tc := range cases {
		f, err := os.Open(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		nt, err := trace.ParseTrace(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		if got := checker.VerifySC(nt.Trace).OK; got != tc.allowSC {
			t.Errorf("%s: SC = %v, want %v", tc.file, got, tc.allowSC)
		}
		if got := checker.VerifyLC(nt.Trace).OK; got != tc.allowLC {
			t.Errorf("%s: LC = %v, want %v", tc.file, got, tc.allowLC)
		}
	}
}

// End-to-end: the Figure 4 extension drama through the public facade.
func TestFigure4EndToEnd(t *testing.T) {
	fx := paperfig.Figure4()
	if !NN.Contains(fx.Prefix, fx.PrefixObs) {
		t.Fatal("prefix must be in NN")
	}
	ext, _ := fx.Extend(N)
	if memmodel.CanExtend(NN, fx.Prefix, fx.PrefixObs, ext) {
		t.Fatal("NN must not extend")
	}
	if !memmodel.CanExtend(LC, fx.Prefix, observerLastWriter(t, fx), ext) {
		t.Fatal("LC must extend its own pairs")
	}
}

func observerLastWriter(t *testing.T, fx paperfig.Figure4Fixture) *Observer {
	t.Helper()
	order, err := fx.Prefix.Dag().TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	return LastWriterObserver(fx.Prefix, order)
}

package ccm

import (
	"math/rand"
	"testing"

	"repro/internal/backer"
	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/memory"
	"repro/internal/observer"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Differential testing across the whole toolkit: for a random corpus of
// computations, every component's view of the same mathematical objects
// must agree. Each subtest is one cross-module invariant.

func corpus(seed int64, count, maxNodes, maxLocs int) []*computation.Computation {
	rng := rand.New(rand.NewSource(seed))
	var out []*computation.Computation
	for len(out) < count {
		n := rng.Intn(maxNodes + 1)
		locs := 1 + rng.Intn(maxLocs)
		g := dag.Random(rng, n, 0.3)
		all := computation.AllOps(locs)
		ops := make([]computation.Op, n)
		for i := range ops {
			ops[i] = all[rng.Intn(len(all))]
		}
		out = append(out, computation.MustFrom(g, ops, locs))
	}
	return out
}

// The full extended lattice holds pointwise on random pairs:
// SC ⊆ LC ⊆ NN ⊆ {NW, WN}; NW ⊆ GSLC ⊆ WW; WN ⊆ WW; Amnesiac ⊆ WN.
func TestDifferentialLattice(t *testing.T) {
	chains := [][]memmodel.Model{
		{memmodel.SC, memmodel.LC, memmodel.NN, memmodel.NW, memmodel.GSLC, memmodel.WW},
		{memmodel.NN, memmodel.WN, memmodel.WW},
		{memmodel.Amnesiac, memmodel.WN},
	}
	for _, c := range corpus(1, 120, 6, 2) {
		if observer.Count(c, 120) >= 120 {
			continue
		}
		observer.Enumerate(c, func(o *observer.Observer) bool {
			for _, chain := range chains {
				for i := 0; i+1 < len(chain); i++ {
					if chain[i].Contains(c, o) && !chain[i+1].Contains(c, o) {
						t.Fatalf("%s ⊆ %s violated at %v / %v",
							chain[i].Name(), chain[i+1].Name(), c, o)
					}
				}
			}
			return true
		})
	}
}

// Model membership and trace verification agree: an observer in SC/LC
// yields a trace the corresponding checker accepts, and an accepted
// trace's witness observer is in the model and reproduces the values.
func TestDifferentialCheckerVsModels(t *testing.T) {
	for _, c := range corpus(2, 150, 7, 2) {
		order, err := c.Dag().TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		o := observer.FromLastWriter(c, order)
		tr := trace.FromObserver(c, o)
		scRes := checker.VerifySC(tr)
		if !scRes.OK {
			t.Fatalf("SC observer's trace rejected by VerifySC: %v", c)
		}
		if !memmodel.SC.Contains(c, scRes.Observer) {
			t.Fatal("VerifySC witness not in SC")
		}
		lcRes := checker.VerifyLC(tr)
		if !lcRes.OK || !memmodel.LC.Contains(c, lcRes.Observer) {
			t.Fatal("VerifyLC inconsistency")
		}
		// Witness reproduces the read values.
		re := trace.FromObserver(c, lcRes.Observer)
		for u := 0; u < c.NumNodes(); u++ {
			if c.Op(dag.Node(u)).Kind == computation.Read && re.ReadVal[u] != tr.ReadVal[u] {
				t.Fatalf("witness does not explain read %d", u)
			}
		}
	}
}

// Offline BACKER (schedule-driven) and online BACKER (reveal-driven)
// both stay in LC on the same computations, and the serial memory's
// pairs are in every model of the lattice.
func TestDifferentialBackerOnlineOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, c := range corpus(4, 80, 14, 2) {
		s, err := sched.WorkStealing(c, 3, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		off, err := backer.Run(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !checker.VerifyLC(off.Trace).OK {
			t.Fatalf("offline BACKER violated LC on %v", c)
		}
		order, err := c.Dag().TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		on, err := memory.Run(memory.NewBacker(3, rng), c, order)
		if err != nil {
			t.Fatal(err)
		}
		if !memmodel.LC.Contains(c, on) {
			t.Fatalf("online BACKER violated LC on %v", c)
		}
		serial, err := memory.Run(memory.NewSerial(), c, order)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []memmodel.Model{memmodel.SC, memmodel.LC, memmodel.NN, memmodel.GSLC, memmodel.WW} {
			if !m.Contains(c, serial) {
				t.Fatalf("serial memory pair outside %s", m.Name())
			}
		}
	}
}

// Monotonicity (Definition 5) holds for every Figure 1 model plus the
// extensions, spot-checked on random relaxations of random pairs.
func TestDifferentialMonotonicity(t *testing.T) {
	models := []memmodel.Model{
		memmodel.SC, memmodel.LC, memmodel.NN, memmodel.NW,
		memmodel.WN, memmodel.WW, memmodel.GSLC, memmodel.Amnesiac,
	}
	for _, c := range corpus(5, 50, 5, 2) {
		if c.Dag().NumEdges() > 8 || observer.Count(c, 60) >= 60 {
			continue
		}
		observer.Enumerate(c, func(o *observer.Observer) bool {
			for _, m := range models {
				if !memmodel.MonotonicAt(m, c, o) {
					t.Fatalf("%s not monotonic at %v / %v", m.Name(), c, o)
				}
			}
			return true
		})
	}
}

// The Graham bound and the span lower bound hold for both schedulers on
// the corpus, and BACKER statistics are internally consistent.
func TestDifferentialSchedulingBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, c := range corpus(7, 80, 20, 1) {
		if c.NumNodes() == 0 {
			continue
		}
		t1, tinf := sched.Work(c, nil), sched.Span(c, nil)
		for _, P := range []int{1, 3, 7} {
			ls, err := sched.ListSchedule(c, P, nil)
			if err != nil {
				t.Fatal(err)
			}
			ws, err := sched.WorkStealing(c, P, nil, rng)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []*sched.Schedule{ls, ws} {
				if err := s.Validate(); err != nil {
					t.Fatal(err)
				}
				if s.Makespan < tinf || int64(s.Makespan)*int64(P) < int64(t1) {
					t.Fatalf("makespan %d below lower bounds (T1=%d T∞=%d P=%d)", s.Makespan, t1, tinf, P)
				}
				if s.Makespan > t1 {
					t.Fatalf("makespan %d above T1=%d", s.Makespan, t1)
				}
			}
		}
	}
}

package ccm

import (
	"testing"
)

func TestQuickStartFlow(t *testing.T) {
	c := NewComputation(1)
	w := c.AddNode(W(0))
	r := c.AddNode(R(0))
	c.MustAddEdge(w, r)

	phi := NewObserver(c)
	phi.Set(0, r, w)

	for _, m := range []Model{SC, LC, NN, NW, WN, WW, Trivial} {
		if !m.Contains(c, phi) {
			t.Errorf("%s rejected the canonical pair", m.Name())
		}
	}

	stale := NewObserver(c) // read observes ⊥ past the write
	if SC.Contains(c, stale) || NN.Contains(c, stale) {
		t.Error("stale read accepted")
	}
	if !Trivial.Contains(c, stale) {
		t.Error("Trivial must accept any valid observer")
	}
}

func TestLastWriterObserver(t *testing.T) {
	c := NewComputation(1)
	w := c.AddNode(W(0))
	r := c.AddNode(R(0))
	c.MustAddEdge(w, r)
	order, err := c.Dag().TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	o := LastWriterObserver(c, order)
	if o.Get(0, r) != w {
		t.Fatal("last writer wrong")
	}
	if !SC.Contains(c, o) {
		t.Fatal("last-writer observer must be SC")
	}
}

func TestCombinators(t *testing.T) {
	c := NewComputation(1)
	o := NewObserver(c)
	both := Intersection("SC∩LC", SC, LC)
	either := Union("SC∪LC", SC, LC)
	if !both.Contains(c, o) || !either.Contains(c, o) {
		t.Fatal("combinators reject the empty pair")
	}
	if len(AllOps(2)) != 5 {
		t.Fatal("AllOps wrong")
	}
}

func TestTraceVerification(t *testing.T) {
	c := NewComputation(1)
	w := c.AddNode(W(0))
	r := c.AddNode(R(0))
	c.MustAddEdge(w, r)
	phi := NewObserver(c)
	phi.Set(0, r, w)
	tr := TraceFromObserver(c, phi)
	if _, ok := VerifySC(tr); !ok {
		t.Fatal("trace must verify under SC")
	}
	if _, ok := VerifyLC(tr); !ok {
		t.Fatal("trace must verify under LC")
	}
	tr.ReadVal[r] = Undefined
	if _, ok := VerifySC(tr); ok {
		t.Fatal("stale trace must fail")
	}
}

func TestFacadeExtensionModels(t *testing.T) {
	c := NewComputation(1)
	w := c.AddNode(W(0))
	n := c.AddNode(N)
	c.MustAddEdge(w, n)
	o := NewObserver(c)
	if !Amnesiac.Contains(c, o) {
		t.Fatal("amnesiac pair rejected by Amnesiac")
	}
	if LC.Contains(c, o) || GSLC.Contains(c, o) {
		t.Fatal("the amnesiac pair must be outside LC and GSLC (⊥ past a write)")
	}
	empty := NewComputation(1)
	if !GSLC.Contains(empty, NewObserver(empty)) {
		t.Fatal("GSLC must contain the empty pair")
	}
}

func TestFacadeOnlineMemory(t *testing.T) {
	c := NewComputation(1)
	w := c.AddNode(W(0))
	r := c.AddNode(R(0))
	c.MustAddEdge(w, r)
	order, err := c.Dag().TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []OnlineMemory{NewSerialMemory(), NewUniversalMemory(LC)} {
		o, err := RunMemory(m, c, order)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !LC.Contains(c, o) {
			t.Fatalf("%s produced a non-LC pair", m.Name())
		}
	}
}

func TestFacadeCanExtend(t *testing.T) {
	c := NewComputation(1)
	c.AddNode(W(0))
	o := NewObserver(c)
	ext, _ := c.Extend(R(0), []Node{0})
	if !CanExtend(SC, c, o, ext) {
		t.Fatal("SC must extend the single-write pair")
	}
}

func TestCustomPredicate(t *testing.T) {
	// A predicate that only fires when w is a write ("NNW" in the
	// paper's naming scheme, had it needed one): weaker than NN.
	p := Predicate{
		Name: "NNW",
		Holds: func(c *Computation, l Loc, u, v, w Node) bool {
			return c.Op(w).IsWriteTo(l)
		},
	}
	m := QDag(p)
	c := NewComputation(1)
	o := NewObserver(c)
	if !m.Contains(c, o) {
		t.Fatal("custom model rejects empty pair")
	}
	if m.Name() != "NNW" {
		t.Fatal("name lost")
	}
}

// Package ccm is a computation-centric memory-model toolkit: an
// executable reproduction of Matteo Frigo and Victor Luchangco,
// "Computation-Centric Memory Models", SPAA 1998.
//
// The paper separates the logical dependencies among instructions (the
// computation, a dag of labelled nodes) from the processors that happen
// to execute them, and specifies memory semantics through observer
// functions: for every node and location, which write that node
// observes. A memory model is a set of (computation, observer) pairs.
//
// This package is the public facade over the implementation packages:
//
//   - computations (Definition 1) and observer functions (Definition 2);
//   - the memory models of the paper: sequential consistency SC
//     (Definition 17), location consistency LC (Definition 18), and the
//     dag-consistency family NN, NW, WN, WW (Definition 20);
//   - the abstract properties of Sections 2–3: completeness,
//     monotonicity, and constructibility, with the constructible-version
//     fixpoint engine of Definition 8;
//   - exhaustive small-universe experiment drivers that machine-check
//     the paper's Figure 1 lattice and Theorems 19–23;
//   - post-mortem trace verification (values in, verdict out), and a
//     simulated multiprocessor running the BACKER coherence algorithm
//     of Cilk, which maintains LC.
//
// # Quick start
//
//	c := ccm.NewComputation(1)          // one memory location
//	w := c.AddNode(ccm.W(0))            // a write
//	r := c.AddNode(ccm.R(0))            // a read
//	c.MustAddEdge(w, r)                 // the read depends on the write
//
//	phi := ccm.NewObserver(c)           // writes observe themselves
//	phi.Set(0, r, w)                    // the read observes the write
//
//	ccm.SC.Contains(c, phi)             // true
//
// See the runnable programs under examples/ and the experiment index in
// DESIGN.md and EXPERIMENTS.md.
package ccm

import (
	"repro/internal/checker"
	"repro/internal/computation"
	"repro/internal/dag"
	"repro/internal/memmodel"
	"repro/internal/memory"
	"repro/internal/observer"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Core types, re-exported as aliases so that values flow freely between
// the facade and the implementation packages.
type (
	// Computation is a dag of instruction-labelled nodes (Definition 1).
	Computation = computation.Computation
	// Node identifies a computation node; Bottom (⊥) is "no node".
	Node = dag.Node
	// Loc identifies a memory location.
	Loc = computation.Loc
	// Op is an abstract instruction: R(l), W(l), or the no-op N.
	Op = computation.Op
	// Observer is an observer-function candidate (Definition 2).
	Observer = observer.Observer
	// Model is a memory model: a decidable set of pairs (Definition 3).
	Model = memmodel.Model
	// Predicate parameterizes Q-dag consistency (Definition 20).
	Predicate = memmodel.Predicate
	// Trace is an executed computation with concrete values.
	Trace = trace.Trace
	// Schedule is a simulated P-processor execution plan.
	Schedule = sched.Schedule
)

// Bottom is the ⊥ observer value: "no write observed".
const Bottom = observer.Bottom

// Undefined is the value a read returns when it observes ⊥.
const Undefined = trace.Undefined

// Instruction constructors.
var (
	// N is the no-op instruction.
	N = computation.N
)

// R returns the read instruction R(l).
func R(l Loc) Op { return computation.R(l) }

// W returns the write instruction W(l).
func W(l Loc) Op { return computation.W(l) }

// AllOps returns the instruction set O for numLocs locations.
func AllOps(numLocs int) []Op { return computation.AllOps(numLocs) }

// NewComputation returns an empty computation over numLocs locations.
func NewComputation(numLocs int) *Computation { return computation.New(numLocs) }

// NewObserver returns the canonical minimal observer for c: writes
// observe themselves, everything else observes ⊥.
func NewObserver(c *Computation) *Observer { return observer.New(c) }

// LastWriterObserver returns W_T, the last-writer observer of the
// topological sort order (Definition 13); it is always an SC witness.
func LastWriterObserver(c *Computation, order []Node) *Observer {
	return observer.FromLastWriter(c, order)
}

// The memory models of Figure 1.
var (
	// SC is sequential consistency (Definition 17).
	SC = memmodel.SC
	// LC is location consistency / coherence (Definition 18); it is the
	// constructible version of NN (Theorem 23).
	LC = memmodel.LC
	// NN is the strongest dag-consistent model (Theorem 21); it is not
	// constructible (Figure 4).
	NN = memmodel.NN
	// NW is dag consistency requiring the middle node to write.
	NW = memmodel.NW
	// WN is the dag consistency of [BFJ+96a].
	WN = memmodel.WN
	// WW is the original dag consistency of [BFJ+96b].
	WW = memmodel.WW
	// Trivial is the weakest model: every valid pair.
	Trivial = memmodel.Trivial
)

// QDag returns the Q-dag consistency model for a custom predicate.
func QDag(p Predicate) Model { return memmodel.QDag(p) }

// Intersection returns the model accepting pairs in all operands.
func Intersection(name string, models ...Model) Model {
	return memmodel.Intersection(name, models...)
}

// Union returns the model accepting pairs in any operand (Lemma 7:
// unions of constructible models are constructible).
func Union(name string, models ...Model) Model {
	return memmodel.Union(name, models...)
}

// NewTrace returns a zero-valued trace skeleton for c.
func NewTrace(c *Computation) *Trace { return trace.New(c) }

// TraceFromObserver derives the trace an execution with observer o
// would produce, with unique write values.
func TraceFromObserver(c *Computation, o *Observer) *Trace {
	return trace.FromObserver(c, o)
}

// VerifySC decides post mortem whether a trace is explainable under
// sequential consistency, returning a witness observer when it is.
func VerifySC(t *Trace) (*Observer, bool) {
	res := checker.VerifySC(t)
	return res.Observer, res.OK
}

// VerifyLC decides post mortem whether a trace is explainable under
// location consistency, returning a witness observer when it is.
func VerifyLC(t *Trace) (*Observer, bool) {
	res := checker.VerifyLC(t)
	return res.Observer, res.OK
}

// Extension models beyond the paper's Figure 1 (see DESIGN.md §6).
var (
	// GSLC is Gao & Sarkar's location consistency [GS95], the model the
	// paper's Section 7 distinguishes from Definition 18. Its lattice
	// position here: NW ⊊ GSLC ⊊ WW, incomparable with WN, strictly
	// weaker than LC.
	GSLC = memmodel.GSLC
	// Amnesiac is the constructible model proving LC ⊊ WN* (writes
	// observe themselves, everything else observes ⊥).
	Amnesiac = memmodel.Amnesiac
)

// Online memory algorithms (Section 3 made operational).
type (
	// OnlineMemory is an algorithm that fixes observer rows as the
	// computation is revealed node by node.
	OnlineMemory = memory.Memory
)

// NewSerialMemory returns the online memory implementing SC.
func NewSerialMemory() OnlineMemory { return memory.NewSerial() }

// NewUniversalMemory returns the greedy online algorithm for an
// arbitrary model; it is total exactly when every reachable pair
// extends (constructibility), and returns memory.ErrStuck otherwise.
func NewUniversalMemory(m Model) OnlineMemory { return memory.NewUniversal(m) }

// RunMemory reveals c to the memory in the given topological order and
// assembles the produced observer function.
func RunMemory(m OnlineMemory, c *Computation, order []Node) (*Observer, error) {
	return memory.Run(m, c, order)
}

// CanExtend reports whether observer o on c extends into model m across
// the one-node extension ext — the building block of constructibility
// (Theorems 10 and 12).
func CanExtend(m Model, c *Computation, o *Observer, ext *Computation) bool {
	return memmodel.CanExtend(m, c, o, ext)
}
